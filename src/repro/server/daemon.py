"""The asyncio backup daemon: TCP frame service over hosted repositories.

Concurrency model: the event loop owns every socket; blocking engine work
(chunking, dedup, container I/O) runs on worker threads via
``asyncio.to_thread``.  Ingest streams bridge the two worlds through a
credit-bounded queue — the loop-side session enqueues ``CHUNK_DATA``
payloads as frames arrive, the engine-side thread dequeues them as the
chunker demands bytes, and consumption notifications flow back to the loop
to grant the client more window.  At most *window* data frames are ever
buffered per backup, however fast the client pushes.

Failure semantics: a backup whose session dies (disconnect, cancellation
during shutdown) aborts the engine thread, which rolls the repository back
(:meth:`repro.repository.LocalRepository._guarded_backup`) — partially
streamed versions never become visible and leave no ``*.tmp`` litter.
Shutdown is a graceful drain: the listener closes, new backups are
refused (``ServerDrainingError``), in-flight sessions get
``drain_timeout`` seconds to finish, stragglers are cancelled into the
rollback path.
"""

from __future__ import annotations

import asyncio
import os
import queue
import threading
import time
from typing import Dict, Optional, Set, Tuple

from ..client.protocol import (
    DATA_BLOCK,
    DEFAULT_WINDOW,
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    FrameType,
    check_hello,
    decode_header,
    decode_json,
    encode_data_header,
    encode_error,
    encode_json,
    frame_parts,
)
from ..cluster.map import ClusterMap, newer_map
from ..errors import (
    ClusterError,
    NotPrimaryError,
    ProtocolError,
    ReplicationError,
    ReproError,
    RemoteError,
    ServerDrainingError,
)
from ..engine.shared_pool import SharedChunkPool, sweep_orphaned_segments
from ..observability import EventLogger, MetricsRegistry, get_registry, new_trace_id
from ..replication.planner import ObjectRef
from ..replication.state import blob_digest, capture_state, source_identity, validate_object
from ..replication.targets import commit_objects, object_path, read_object, write_object
from ..repository import FilePlan, validate_rel_name
from ..storage.repo import is_repo_url
from .registry import RepoHandle, RepositoryRegistry

#: Ceiling on one replicated object's size (containers are ~4 MiB; the
#: checkpoint grows with the fingerprint tables but stays far below this).
_MAX_OBJECT = 1 << 30

#: Sentinel closing a backup's block queue (client sent BACKUP_END).
_EOF = object()

#: Chunk-data blobs pulled per thread hop on the restore path.
_RESTORE_BATCH = 32


async def read_frame(reader: asyncio.StreamReader) -> Tuple[FrameType, bytes]:
    """Read exactly one validated frame from the stream."""
    header = await reader.readexactly(HEADER_SIZE)
    length, ftype = decode_header(header)
    payload = await reader.readexactly(length) if length else b""
    return ftype, payload


def _pull_batch(iterator, limit: int) -> list:
    """Drain up to ``limit`` items from a blocking iterator (thread-side)."""
    batch = []
    try:
        for _ in range(limit):
            batch.append(next(iterator))
    except StopIteration:
        pass
    return batch


class _EndSession(Exception):
    """Internal: tear down this client connection (after an ERROR frame)."""


def sanitize_trace(value: object) -> str:
    """Vet a client-supplied trace ID for the logs (printable, bounded)."""
    if not isinstance(value, str):
        return ""
    text = value[:64]
    if any(not (32 <= ord(ch) < 127) for ch in text):
        return ""
    return text


class _Session:
    """One client connection's frame conversation."""

    def __init__(self, daemon: "BackupDaemon", reader, writer) -> None:
        self.daemon = daemon
        self.reader = reader
        self.writer = writer
        # One trace ID per session; per-request IDs are "<session>.<seq>"
        # (the client derives the same IDs from the HELLO_OK handoff).
        self.trace = new_trace_id()
        self.seq = 0

    # ------------------------------------------------------------------
    async def run(self) -> None:
        peer = None
        try:
            peer = self.writer.get_extra_info("peername")
        except Exception:  # pragma: no cover - transport quirk
            pass
        self.daemon.events.log(
            "session_open", trace=self.trace, peer=str(peer) if peer else None
        )
        try:
            await self._handshake()
            while True:
                try:
                    ftype, payload = await read_frame(self.reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client hung up between requests
                await self._dispatch(ftype, payload)
        except _EndSession:
            pass
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except ProtocolError as exc:
            await self._send_error(exc)
        finally:
            self.daemon.events.log("session_close", trace=self.trace, requests=self.seq)
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self) -> None:
        ftype, payload = await read_frame(self.reader)
        if ftype != FrameType.HELLO:
            raise ProtocolError(f"expected HELLO, got {ftype.name}")
        check_hello(payload)
        self.writer.write(
            encode_json(
                FrameType.HELLO_OK,
                {
                    "magic": MAGIC,
                    "version": PROTOCOL_VERSION,
                    "window": self.daemon.window,
                    "trace": self.trace,
                },
            )
        )
        await self.writer.drain()

    async def _send_error(self, exc: BaseException) -> None:
        try:
            self.writer.write(encode_error(exc))
            await self.writer.drain()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    async def _dispatch(self, ftype: FrameType, payload: bytes) -> None:
        handlers = {
            FrameType.BACKUP_BEGIN: ("backup", self._handle_backup),
            FrameType.RESTORE_BEGIN: ("restore", self._handle_restore),
            FrameType.STATS: ("stats", self._handle_stats),
            FrameType.VERSIONS: ("versions", self._handle_versions),
            FrameType.DELETE_OLDEST: ("delete", self._handle_delete_oldest),
            FrameType.REPLICATE_STATE: ("replicate_state", self._handle_replicate_state),
            FrameType.REPLICATE_PUT: ("replicate_put", self._handle_replicate_put),
            FrameType.REPLICATE_COMMIT: ("replicate_commit", self._handle_replicate_commit),
            FrameType.REPLICATE_FETCH: ("replicate_fetch", self._handle_replicate_fetch),
            FrameType.VERIFY: ("verify", self._handle_verify),
            FrameType.CLUSTER_MAP: ("cluster_map", self._handle_cluster_map),
            FrameType.CLUSTER_SYNC: ("cluster_sync", self._handle_cluster_sync),
            FrameType.TENANT_DROP: ("tenant_drop", self._handle_tenant_drop),
        }
        entry = handlers.get(ftype)
        if entry is None:
            raise ProtocolError(f"unexpected {ftype.name} frame between requests")
        kind, handler = entry
        obj = decode_json(payload)
        self.seq += 1
        # A clustered daemon counts the data-plane traffic the router sends
        # it (CLUSTER_MAP fetches are control plane, not routed requests).
        if self.daemon.cluster is not None and ftype != FrameType.CLUSTER_MAP:
            self.daemon.metrics.inc("cluster.requests_routed")
        # Prefer the client's request trace (carried in the payload) so one
        # ID joins both sides' logs; fall back to our own session-derived ID.
        trace = sanitize_trace(obj.get("trace")) or f"{self.trace}.{self.seq}"
        repo = obj.get("repo") if isinstance(obj.get("repo"), str) else None
        events, metrics = self.daemon.events, self.daemon.metrics
        metrics.inc("server.requests_total")
        events.log(f"{kind}_begin", trace=trace, repo=repo)
        started = time.perf_counter()
        try:
            await handler(obj)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            elapsed = time.perf_counter() - started
            cause = exc.__cause__ if isinstance(exc, _EndSession) and exc.__cause__ else exc
            metrics.inc("server.errors_total")
            metrics.inc(f"server.{kind}_errors_total")
            events.log(
                f"{kind}_error",
                trace=trace,
                repo=repo,
                duration_ms=round(elapsed * 1000, 3),
                error=type(cause).__name__,
                message=str(cause),
            )
            if isinstance(exc, _EndSession):
                raise
            if isinstance(exc, (asyncio.IncompleteReadError, ConnectionError)):
                raise _EndSession() from None
            if isinstance(exc, ProtocolError):
                # Framing is no longer trustworthy: report and hang up.
                await self._send_error(exc)
                raise _EndSession() from None
            await self._send_error(exc)
        else:
            elapsed = time.perf_counter() - started
            metrics.observe(f"server.{kind}_seconds", elapsed)
            events.log(
                f"{kind}_end", trace=trace, repo=repo,
                duration_ms=round(elapsed * 1000, 3),
            )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    async def _handle_backup(self, obj: dict) -> None:
        if self.daemon.draining:
            raise ServerDrainingError("server is draining; retry the backup elsewhere")
        # Write fencing + the promotion verify gate happen before the
        # repository is even created: a fenced write must not leave an
        # empty tenant directory behind.
        await self.daemon.ensure_write_primary(obj.get("repo"))
        handle = self.daemon.registry.get(obj.get("repo"), create=True)
        # Vet names before any lock or stream: a traversal attempt
        # ('../x', absolute, control chars) dies here with a typed ERROR.
        plan: FilePlan = [
            (validate_rel_name(str(rel)), int(size))
            for rel, size in obj.get("files", [])
        ]
        tag = str(obj.get("tag", "") or "")
        async with handle.lock.write_locked():
            handle.active_ops += 1
            try:
                await self._run_backup(handle, plan, tag)
            finally:
                handle.active_ops -= 1

    async def _run_backup(self, handle: RepoHandle, plan: FilePlan, tag: str) -> None:
        loop = asyncio.get_running_loop()
        window = self.daemon.window
        blocks: "queue.Queue" = queue.Queue()
        consumed = {"since_grant": 0, "total": 0, "ended": False}

        def note_consumed() -> None:
            # Loop-side: grant fresh window as the engine drains the queue.
            consumed["total"] += 1
            # Once BACKUP_END arrives the client sends no more data, so any
            # further CREDIT would land *after* BACKUP_DONE and poison the
            # next pooled request on this connection.  Stop granting.
            if consumed["ended"]:
                return
            consumed["since_grant"] += 1
            if consumed["since_grant"] >= max(1, window // 2) and not self.writer.is_closing():
                grant, consumed["since_grant"] = consumed["since_grant"], 0
                self.writer.write(encode_json(FrameType.CREDIT, {"frames": grant}))

        def block_iter():
            # Thread-side: feed the chunker from the frame queue.
            while True:
                item = blocks.get()
                if item is _EOF:
                    return
                if isinstance(item, BaseException):
                    raise item
                loop.call_soon_threadsafe(note_consumed)
                yield item

        # Initial window, then start the engine before reading any data.
        self.writer.write(encode_json(FrameType.CREDIT, {"frames": window}))
        await self.writer.drain()
        engine_done = threading.Event()

        def _engine():
            # The event — not the asyncio task state — is the ground truth
            # for "the engine thread has stopped touching the repository":
            # cancelling a to_thread task only marks the future, the thread
            # runs on regardless.
            try:
                return handle.repository.backup_blocks(block_iter(), plan, tag)
            finally:
                engine_done.set()

        backup_task = asyncio.ensure_future(asyncio.to_thread(_engine))

        received = 0
        read_task: Optional[asyncio.Task] = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(read_frame(self.reader))
                # Wait on the socket AND the engine: if the engine fails
                # while the client is stalled waiting for credit, the error
                # must reach it now, not after another frame arrives.
                await asyncio.wait(
                    {read_task, backup_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read_task.done():
                    # Engine finished first.  Success is impossible before
                    # BACKUP_END (the stream has no EOF yet), so surface
                    # the failure immediately.
                    exc = backup_task.exception()
                    raise exc if exc is not None else ProtocolError(
                        "engine finished before BACKUP_END"
                    )
                ftype, payload = read_task.result()
                read_task = None
                if ftype == FrameType.CHUNK_DATA:
                    received += 1
                    if received - consumed["total"] > window * 2:
                        raise ProtocolError("client overran its credit window")
                    self.daemon.metrics.inc("server.ingest_bytes", len(payload))
                    blocks.put(payload)
                elif ftype == FrameType.BACKUP_END:
                    consumed["ended"] = True
                    blocks.put(_EOF)
                    break
                else:
                    raise ProtocolError(f"unexpected {ftype.name} frame mid-backup")
            report = await backup_task
        except BaseException as first:
            # Abort the engine thread (triggers repository rollback), wait
            # for the rollback to complete, then surface the root cause.
            blocks.put(
                first
                if isinstance(first, ReproError)
                else RemoteError("backup session aborted")
            )
            # The engine runs on a worker thread and cannot be interrupted;
            # the queued exception makes it unwind into the repository
            # rollback.  When shutdown() cancels this session, the await on
            # backup_task auto-cancels that future too — while the thread
            # runs on — so backup_task.done() proves nothing.  Wait on the
            # thread's own completion event, swallowing repeated
            # cancellation, so shutdown() only returns once the repository
            # is clean: committed or rolled back, never mid-write.
            while not engine_done.is_set():
                try:
                    await asyncio.shield(asyncio.to_thread(engine_done.wait))
                except asyncio.CancelledError:
                    continue
                except BaseException:
                    break
            handle.note_backup_failed()
            if isinstance(first, ReproError) and not isinstance(first, ProtocolError):
                await self._send_error(first)
                raise _EndSession() from first
            raise
        finally:
            if read_task is not None:
                read_task.cancel()
                try:
                    await read_task
                except BaseException:
                    pass

        handle.note_backup(report)
        self.daemon.note_session("backup")
        self.writer.write(encode_json(FrameType.BACKUP_DONE, report))
        await self.writer.drain()

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def _restore_options(self, obj: dict) -> dict:
        """Vet the client's restore knobs against the daemon's limits.

        Unknown keys are ignored (old clients), requested parallelism is
        clamped to the operator's ``restore_workers`` cap, and the partial
        ``file`` name gets the same traversal vetting as backup plans.
        """
        cap = self.daemon.restore_workers
        requested = obj.get("workers")
        workers = cap if requested is None else max(1, min(int(requested), cap))
        readahead = obj.get("readahead")
        if readahead is not None:
            readahead = max(1, min(int(readahead), 64))
        rel = obj.get("file")
        if rel is not None:
            rel = validate_rel_name(str(rel))
        return {
            "workers": workers,
            "readahead": readahead,
            "verify": bool(obj.get("verify", False)),
            "file": rel,
        }

    async def _handle_restore(self, obj: dict) -> None:
        handle = self.daemon.registry.get(obj.get("repo"))
        version = int(obj.get("version", 0))
        options = self._restore_options(obj)
        metrics = self.daemon.metrics
        # In a cluster, the router sends restores to the tenant's primary;
        # a restore served by a replica holder *is* a failover (the primary
        # is down or draining) — count it where operators can see it.
        cluster, node = self.daemon.cluster, self.daemon.node_name
        if cluster is not None and node and cluster.has_node(node):
            if not cluster.is_primary(node, handle.name):
                metrics.inc("cluster.failovers")
                self.daemon.events.log(
                    "cluster_failover_serve",
                    repo=handle.name,
                    node=node,
                    primary=cluster.primary(handle.name).name,
                    version=version,
                )
        async with handle.lock.read_locked():
            handle.active_ops += 1
            try:
                plan, data = await asyncio.to_thread(
                    lambda: handle.repository.restore(version, **options)
                )
                self.writer.write(
                    encode_json(
                        FrameType.RESTORE_META,
                        {"version": version, "files": [[rel, size] for rel, size in plan]},
                    )
                )
                await self.writer.drain()
                sent_chunks = 0
                sent_bytes = 0
                send_seconds = 0.0
                # Coalesce chunk-sized blobs into ~DATA_BLOCK frames so the
                # wire carries a few large DATA frames per window instead of
                # one frame per 8 KiB chunk (frame headers + drain round
                # trips were dominating small-chunk restores).  The blobs
                # are *gathered*, never joined: one header plus the chunk
                # list goes to ``writelines``, so the engine's buffers flow
                # to the transport without a coalescing copy.
                pending_out: list = []
                pending_len = 0

                async def flush() -> None:
                    nonlocal send_seconds, sent_bytes, pending_len
                    if not pending_out:
                        return
                    mark = time.perf_counter()
                    self.writer.writelines(
                        [encode_data_header(pending_len), *pending_out]
                    )
                    sent_bytes += pending_len
                    pending_out.clear()
                    pending_len = 0
                    await self.writer.drain()  # TCP backpressure for the stream
                    send_seconds += time.perf_counter() - mark

                iterator = iter(data)
                while True:
                    batch = await asyncio.to_thread(_pull_batch, iterator, _RESTORE_BATCH)
                    for blob in batch:
                        sent_chunks += 1
                        pending_out.append(blob)
                        pending_len += len(blob)
                        if pending_len >= DATA_BLOCK:
                            await flush()
                    if len(batch) < _RESTORE_BATCH:
                        break
                await flush()
                self.writer.write(
                    encode_json(
                        FrameType.RESTORE_END,
                        {"chunks": sent_chunks, "bytes": sent_bytes},
                    )
                )
                await self.writer.drain()
                metrics.observe("restore.send_seconds", send_seconds)
                handle.note_restore(sent_bytes)
                metrics.inc("server.restore_bytes", sent_bytes)
                self.daemon.note_session("restore")
            finally:
                handle.active_ops -= 1

    # ------------------------------------------------------------------
    # Control requests
    # ------------------------------------------------------------------
    async def _handle_stats(self, obj: dict) -> None:
        name = obj.get("repo")
        if name is None:
            # Whole-server stats: sample each repo under its read lock, as
            # the single-repo path does, so an active backup or rollback on
            # one tenant is never observed mid-mutation.
            names = await asyncio.to_thread(self.daemon.registry.repo_names)
            repos: Dict[str, Dict] = {}
            for repo_name in names:
                handle = self.daemon.registry.get(repo_name, create=True)
                async with handle.lock.read_locked():
                    repos[repo_name] = await asyncio.to_thread(handle.stats)
            doc: Dict = {"repos": repos, "server": self.daemon.server_stats()}
        else:
            handle = self.daemon.registry.get(name)
            async with handle.lock.read_locked():
                doc = await asyncio.to_thread(handle.stats)
        doc["metrics"] = self.daemon.metrics.snapshot()
        self.daemon.note_session("stats")
        self.writer.write(encode_json(FrameType.STATS_OK, doc))
        await self.writer.drain()

    async def _handle_versions(self, obj: dict) -> None:
        handle = self.daemon.registry.get(obj.get("repo"))
        async with handle.lock.read_locked():
            rows = await asyncio.to_thread(handle.repository.versions)
        self.daemon.note_session("versions")
        self.writer.write(encode_json(FrameType.VERSIONS_OK, {"versions": rows}))
        await self.writer.drain()

    # ------------------------------------------------------------------
    # Replication: this daemon as a mirror target
    # ------------------------------------------------------------------
    # Locking discipline: STATE, PUT and FETCH run under the tenant's
    # *read* lock — puts land invisible additions (containers/manifests
    # are unreferenced until a recipe names them, staged files are not
    # live), so they coexist with restores while still excluding writers
    # (backup, delete, commit).  COMMIT takes the *write* lock: it flips
    # the tenant's visible version set, and must also drop the cached
    # engine so the next operation reloads the new on-disk state.

    @staticmethod
    def _replication_object(obj: dict) -> Tuple[str, str]:
        kind = str(obj.get("kind", "") or "")
        name = str(obj.get("name", "") or "")
        validate_object(kind, name)
        return kind, name

    @staticmethod
    def _replication_refs(raw: object, what: str) -> list:
        if not isinstance(raw, list):
            raise ProtocolError(f"replication {what} must be a list of [kind, name]")
        refs = []
        for pair in raw:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ProtocolError(f"malformed replication {what} entry: {pair!r}")
            kind, name = str(pair[0]), str(pair[1])
            validate_object(kind, name)
            refs.append(ObjectRef(kind, name))
        return refs

    async def _handle_replicate_state(self, obj: dict) -> None:
        handle = self.daemon.registry.get(obj.get("repo"), create=True)
        async with handle.lock.read_locked():
            state = await asyncio.to_thread(capture_state, handle.repository.root)
        self.daemon.note_session("replicate_state")
        self.writer.write(
            encode_json(
                FrameType.REPLICATE_STATE_OK,
                {"state": state, "identity": source_identity(handle.repository.root)},
            )
        )
        await self.writer.drain()

    async def _handle_replicate_put(self, obj: dict) -> None:
        if self.daemon.draining:
            raise ServerDrainingError("server is draining; retry the sync elsewhere")
        handle = self.daemon.registry.get(obj.get("repo"), create=True)
        kind, name = self._replication_object(obj)
        size = obj.get("size")
        if not isinstance(size, int) or size < 0 or size > _MAX_OBJECT:
            raise ProtocolError(f"REPLICATE_PUT announces invalid size {size!r}")
        digest = str(obj.get("digest", "") or "")
        staged = bool(obj.get("staged", False))
        parts = []
        received = 0
        while received < size:
            ftype, payload = await read_frame(self.reader)
            if ftype != FrameType.CHUNK_DATA:
                raise ProtocolError(f"unexpected {ftype.name} frame mid-put")
            parts.append(payload)
            received += len(payload)
        if received != size:
            raise ProtocolError(
                f"object body overran its announced size ({received} > {size})"
            )
        blob = b"".join(parts)
        if digest and blob_digest(blob) != digest:
            raise ReplicationError(
                f"shipped {kind} {name!r} failed digest validation in transit"
            )
        async with handle.lock.read_locked():
            handle.active_ops += 1
            try:
                await asyncio.to_thread(
                    write_object, handle.repository.root, kind, name, blob, staged
                )
            finally:
                handle.active_ops -= 1
        self.daemon.metrics.inc("server.replicate_bytes", len(blob))
        self.daemon.note_session("replicate_put")
        self.writer.write(
            encode_json(FrameType.REPLICATE_PUT_OK, {"bytes": len(blob)})
        )
        await self.writer.drain()

    async def _handle_replicate_commit(self, obj: dict) -> None:
        handle = self.daemon.registry.get(obj.get("repo"), create=True)
        renames = self._replication_refs(obj.get("renames", []), "renames")
        deletes = self._replication_refs(obj.get("deletes", []), "deletes")
        async with handle.lock.write_locked():
            handle.active_ops += 1
            try:
                applied = await asyncio.to_thread(
                    commit_objects, handle.repository.root, renames, deletes
                )
                handle.repository.invalidate()
            finally:
                handle.active_ops -= 1
        # A replica sync commits on ring *successors*; a commit landing on
        # the tenant's *primary* is a rebalance move arriving at its new
        # home (the mover ships old-placement → new-primary).
        cluster, node = self.daemon.cluster, self.daemon.node_name
        if cluster is not None and node and cluster.has_node(node):
            if cluster.is_primary(node, handle.name):
                self.daemon.metrics.inc("cluster.tenants_moved")
                self.daemon.events.log(
                    "cluster_tenant_moved", repo=handle.name, node=node
                )
        self.daemon.note_session("replicate_commit")
        self.writer.write(
            encode_json(FrameType.REPLICATE_COMMIT_OK, {"applied": applied})
        )
        await self.writer.drain()

    async def _handle_replicate_fetch(self, obj: dict) -> None:
        handle = self.daemon.registry.get(obj.get("repo"))
        kind, name = self._replication_object(obj)
        root = handle.repository.root
        async with handle.lock.read_locked():
            # Whole-container reads on plain-directory (file) roots go
            # kernel-to-kernel: one CHUNK_DATA header, then os.sendfile
            # ships the file without the payload ever entering user space.
            # The read lock is held across the send so compaction cannot
            # rewrite the container under the in-flight copy.
            path = (
                object_path(root, kind, name) if not is_repo_url(root) else None
            )
            if path is not None and os.path.isfile(path):
                size = os.path.getsize(path)
                if 0 < size <= MAX_PAYLOAD:
                    self.daemon.note_session("replicate_fetch")
                    self.writer.write(
                        encode_json(FrameType.REPLICATE_OBJECT, {"size": size})
                    )
                    self.writer.write(encode_data_header(size))
                    await self.writer.drain()
                    loop = asyncio.get_running_loop()
                    with open(path, "rb") as payload_file:
                        try:
                            await loop.sendfile(
                                self.writer.transport, payload_file, fallback=True
                            )
                        except (NotImplementedError, RuntimeError):
                            # Transport cannot sendfile (e.g. SSL or a test
                            # double): stream it the classic way.
                            while True:
                                block = payload_file.read(DATA_BLOCK)
                                if not block:
                                    break
                                self.writer.write(block)
                                await self.writer.drain()
                    await self.writer.drain()
                    return
            blob = await asyncio.to_thread(read_object, root, kind, name)
        self.daemon.note_session("replicate_fetch")
        self.writer.write(encode_json(FrameType.REPLICATE_OBJECT, {"size": len(blob)}))
        view = memoryview(blob)
        for offset in range(0, len(blob), DATA_BLOCK):
            self.writer.writelines(
                frame_parts(FrameType.CHUNK_DATA, view[offset : offset + DATA_BLOCK])
            )
            await self.writer.drain()
        await self.writer.drain()

    async def _handle_verify(self, obj: dict) -> None:
        handle = self.daemon.registry.get(obj.get("repo"))
        deep = bool(obj.get("deep", False))
        async with handle.lock.read_locked():
            doc = await asyncio.to_thread(handle.repository.verify, deep)
        self.daemon.note_session("verify")
        self.writer.write(encode_json(FrameType.VERIFY_OK, doc))
        await self.writer.drain()

    # ------------------------------------------------------------------
    # Cluster control plane
    # ------------------------------------------------------------------
    async def _handle_cluster_map(self, obj: dict) -> None:
        # Gossip on ping: a clustered peer may attach its own map; adopt
        # it when strictly newer (epoch monotonicity — never downgrade).
        # This is how a promotion minted by one daemon reaches the rest,
        # and how a rejoining stale daemon learns it was demoted.
        offered = obj.get("map")
        if offered is not None and self.daemon.cluster is not None:
            self.daemon.adopt_cluster_map(offered, source="peer")
        cluster = self.daemon.cluster
        self.daemon.note_session("cluster_map")
        self.writer.write(
            encode_json(
                FrameType.CLUSTER_MAP_OK,
                {
                    "map": cluster.as_doc() if cluster is not None else None,
                    "node": self.daemon.node_name,
                    "draining": self.daemon.draining,
                },
            )
        )
        await self.writer.drain()

    async def _handle_cluster_sync(self, obj: dict) -> None:
        if self.daemon.draining:
            raise ServerDrainingError("server is draining; sync from the next epoch")
        repo = obj.get("repo")
        doc = await self.daemon.sync_owned(str(repo) if repo else None)
        self.daemon.note_session("cluster_sync")
        self.writer.write(encode_json(FrameType.CLUSTER_SYNC_OK, doc))
        await self.writer.drain()

    async def _handle_tenant_drop(self, obj: dict) -> None:
        if self.daemon.draining:
            raise ServerDrainingError("server is draining; refusing tenant drop")
        handle = self.daemon.registry.get(obj.get("repo"))
        async with handle.lock.write_locked():
            removed = await asyncio.to_thread(self.daemon.registry.drop, handle.name)
        self.daemon.note_session("tenant_drop")
        self.daemon.events.log("tenant_drop", repo=handle.name, removed=removed)
        self.writer.write(
            encode_json(FrameType.TENANT_DROP_OK, {"repo": handle.name, "removed": removed})
        )
        await self.writer.drain()

    async def _handle_delete_oldest(self, obj: dict) -> None:
        await self.daemon.ensure_write_primary(obj.get("repo"))
        handle = self.daemon.registry.get(obj.get("repo"))
        async with handle.lock.write_locked():
            handle.active_ops += 1
            try:
                result = await asyncio.to_thread(handle.repository.delete_oldest)
            finally:
                handle.active_ops -= 1
        handle.note_delete()
        self.daemon.note_session("delete")
        self.writer.write(encode_json(FrameType.DELETE_OK, result))
        await self.writer.drain()


class BackupDaemon:
    """The multi-tenant asyncio backup service.

    Args:
        root: directory holding one repository subdirectory per tenant.
        host / port: listen address (port 0 picks a free port; see
            :attr:`address` after :meth:`start`).
        window: ingest credit window, in CHUNK_DATA frames per backup.
        restore_workers: server-side cap (and default) for the restore
            container-reader pool; clients may request fewer via
            ``RESTORE_BEGIN`` but never more.
        history_depth / compress: forwarded to newly created repositories.
        drain_timeout: seconds in-flight sessions get to finish on
            :meth:`shutdown` before being cancelled into rollback.
        metrics: the :class:`MetricsRegistry` to record into (defaults to
            the process registry, so engine-layer timings land beside the
            daemon's own request histograms).
        event_log: structured event sink; defaults to the no-op logger.
        metrics_interval: seconds between periodic ``metrics_report``
            events in the event log (0 disables the reporter).
        cluster_map: the cluster this daemon belongs to — a
            :class:`~repro.cluster.map.ClusterMap` or its document form.
            A clustered daemon serves the map over ``CLUSTER_MAP``, counts
            routed traffic and failover-served restores, and can replicate
            its primary-owned tenants to their ring successors.
        node_name: this daemon's node name within ``cluster_map``.
        replicate_interval: seconds between automatic replica syncs of
            primary-owned tenants to their ring successors (0 disables;
            requires ``cluster_map`` + ``node_name``).
        probe_interval: seconds between health probes of this node's ring
            predecessor (0 disables; requires ``cluster_map`` +
            ``node_name``).  With probing on, ``probe_failures``
            consecutive failed probes declare the predecessor dead: this
            daemon mints an epoch-bumped map marking it down, deep-verifies
            its own replicas of the tenants it inherits before adopting the
            map, and gossips the new map to the live peers.
        probe_failures: consecutive probe failures before a predecessor is
            declared dead (>= 1).
        probe_timeout: per-probe connect/read deadline in seconds — kept
            short so a dead peer is detected in roughly
            ``probe_failures * (probe_interval + probe_timeout)``.
        ingest_workers: size of the daemon-lifetime shared chunking pool
            (``serve --ingest-workers``).  ``0`` keeps the serial inline
            ingest path; ``N >= 1`` chunks every tenant's backups on one
            :class:`~repro.engine.shared_pool.SharedChunkPool` — segments
            ship to workers through shared-memory slabs, crashed workers
            respawn transparently, and any value of ``N`` produces
            byte-identical recipes, containers and dedup stats.
        ingest_executor: ``"process"`` (default) or ``"thread"`` — the
            executor kind behind the shared pool.  Threads exist for
            platforms where fork is unavailable and for determinism tests.
    """

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        window: int = DEFAULT_WINDOW,
        history_depth: int = 1,
        compress: bool = False,
        drain_timeout: float = 10.0,
        restore_workers: int = 4,
        metrics: Optional[MetricsRegistry] = None,
        event_log: Optional[EventLogger] = None,
        metrics_interval: float = 0.0,
        cluster_map: Optional[object] = None,
        node_name: Optional[str] = None,
        replicate_interval: float = 0.0,
        probe_interval: float = 0.0,
        probe_failures: int = 3,
        probe_timeout: float = 2.0,
        ingest_workers: int = 0,
        ingest_executor: str = "process",
    ) -> None:
        if window < 1:
            raise ReproError("credit window must be at least 1 frame")
        if restore_workers < 1:
            raise ReproError("restore_workers must be at least 1")
        if ingest_workers < 0:
            raise ReproError("ingest_workers must be >= 0 (0 = serial ingest)")
        if cluster_map is None:
            self.cluster: Optional[ClusterMap] = None
        elif isinstance(cluster_map, ClusterMap):
            self.cluster = cluster_map
        else:
            self.cluster = ClusterMap.from_doc(cluster_map)
        self.node_name = node_name
        if self.cluster is not None and node_name and not self.cluster.has_node(node_name):
            raise ClusterError(
                f"node {node_name!r} is not in cluster map epoch {self.cluster.epoch}"
            )
        if replicate_interval > 0 and (self.cluster is None or not node_name):
            raise ClusterError(
                "replicate_interval needs a cluster map and a node name"
            )
        if probe_interval > 0 and (self.cluster is None or not node_name):
            raise ClusterError("probe_interval needs a cluster map and a node name")
        if probe_failures < 1:
            raise ClusterError(f"probe_failures must be >= 1, got {probe_failures}")
        self.replicate_interval = replicate_interval
        self.probe_interval = probe_interval
        self.probe_failures = probe_failures
        self.probe_timeout = probe_timeout
        self.metrics = metrics if metrics is not None else get_registry()
        # One chunking pool for the daemon's whole lifetime, shared by every
        # tenant and session: CDC + SHA-1 escape the event loop's GIL, and
        # the slab free-list bounds total in-flight segment memory however
        # many backups run concurrently.
        self.ingest_workers = ingest_workers
        self.ingest_pool: Optional[SharedChunkPool] = (
            SharedChunkPool(
                ingest_workers, executor=ingest_executor, metrics=self.metrics
            )
            if ingest_workers >= 1
            else None
        )
        # Hosted repositories record their stage timings (chunking, dedup,
        # container I/O) into the daemon's registry, so STATS metrics tell
        # one consistent story per daemon.
        self.registry = RepositoryRegistry(
            root, history_depth, compress, self.metrics,
            ingest_pool=self.ingest_pool,
        )
        self.host = host
        self.port = port
        self.window = window
        self.restore_workers = restore_workers
        self.drain_timeout = drain_timeout
        self.events = event_log if event_log is not None else EventLogger()
        self.metrics_interval = metrics_interval
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Set[asyncio.Task] = set()
        self._reporter: Optional[asyncio.Task] = None
        self._syncer: Optional[asyncio.Task] = None
        self._prober: Optional[asyncio.Task] = None
        self._resyncer: Optional[asyncio.Task] = None
        # Promotion verify gate state, keyed (tenant, epoch): tenants whose
        # replica passed the deep verify for an epoch vs. tenants fenced
        # because the verify failed (or the local copy is missing).
        self._promotion_ok: Set[Tuple[str, int]] = set()
        self._fenced: Set[Tuple[str, int]] = set()
        # Epoch whose demotion resync completed cleanly (every hosted
        # tenant pulled + deep-verified): the prober may mint a revive map
        # for it, returning this node's natural primaryship.
        self._resync_clean: Optional[int] = None
        self._started = time.monotonic()
        self._session_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolves the real port for ``port=0``)."""
        if self.ingest_pool is not None:
            # Reclaim slabs leaked by a previous daemon that died without
            # unlinking, then spawn the workers *before* the first backup
            # arrives — forking from a thread-quiet moment is safest, and
            # eager spawn keeps first-backup latency flat.
            swept = await asyncio.to_thread(sweep_orphaned_segments, self.metrics)
            if swept:
                self.events.log("ingest_orphans_swept", segments=swept)
            await asyncio.to_thread(self.ingest_pool.warm)
        self._server = await asyncio.start_server(self._accept, self.host, self.port)
        self._started = time.monotonic()
        self.port = self._server.sockets[0].getsockname()[1]
        self.events.log("daemon_start", address=self.address, window=self.window)
        if self.metrics_interval > 0:
            self._reporter = asyncio.ensure_future(self._report_metrics())
        if self.replicate_interval > 0:
            self._syncer = asyncio.ensure_future(self._replica_sync_loop())
        if self.probe_interval > 0:
            self._prober = asyncio.ensure_future(self._health_loop())

    async def _report_metrics(self) -> None:
        while True:
            await asyncio.sleep(self.metrics_interval)
            self.events.log(
                "metrics_report",
                metrics=self.metrics.snapshot(),
                server=self.server_stats(),
            )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Listener partition (chaos harness)
    # ------------------------------------------------------------------
    async def pause_accepting(self) -> None:
        """Close the listener without draining: a network partition.

        In-flight sessions keep running; *new* connections are refused
        until :meth:`resume_accepting` re-binds the same port.  The chaos
        harness partitions a mirror daemon this way — the daemon process
        stays healthy, only its front door disappears.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.events.log("daemon_pause_accepting", address=self.address)

    async def resume_accepting(self) -> None:
        """Heal a :meth:`pause_accepting` partition (re-bind the port)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._accept, self.host, self.port
            )
            self.events.log("daemon_resume_accepting", address=self.address)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def _accept(self, reader, writer) -> None:
        session = _Session(self, reader, writer)
        task = asyncio.current_task()
        self._sessions.add(task)
        try:
            await session.run()
        except asyncio.CancelledError:
            # Shutdown cancelled this session; the connection teardown in
            # session.run's finally already ran.  Finish quietly so asyncio's
            # stream machinery does not log the cancellation as a crash.
            pass
        finally:
            self._sessions.discard(task)

    # ------------------------------------------------------------------
    def note_session(self, kind: str) -> None:
        self._session_counts[kind] = self._session_counts.get(kind, 0) + 1

    def server_stats(self) -> Dict:
        return {
            "address": self.address,
            "uptime_seconds": time.monotonic() - self._started,
            "active_connections": len(self._sessions),
            "draining": self.draining,
            "requests": dict(self._session_counts),
            "window": self.window,
        }

    # ------------------------------------------------------------------
    async def replicate_tenant(self, name: str, target) -> "SyncReport":
        """Mirror one hosted tenant to ``target`` under its reader lock.

        The reader lock gives the sync a consistent snapshot — backups and
        ``delete_oldest`` (writers) wait until the sync finishes, while
        concurrent restores (readers) proceed.  A deletion landing after
        the sync propagates to the mirror on the *next* sync (§4.5 expiry
        tags make that an O(1) container-unlink on the mirror).
        """
        from ..replication.session import ReplicationSession

        handle = self.registry.get(name)
        async with handle.lock.read_locked():
            handle.active_ops += 1
            try:
                session = ReplicationSession(
                    handle.repository.root, target, metrics=self.metrics
                )
                report = await asyncio.to_thread(session.run)
            finally:
                handle.active_ops -= 1
        self.note_session("replicate")
        self.events.log(
            "replicate_tenant", repo=name, **report.as_dict()
        )
        return report

    # ------------------------------------------------------------------
    async def sync_owned(self, repo: Optional[str] = None) -> Dict:
        """Replicate this node's primary-owned tenants to their successors.

        The cluster's durability loop: each tenant whose ring primary is
        this node is shipped (O(delta), via :class:`ReplicationSession`) to
        every ring successor.  Tenants this node merely replicates are
        skipped — only primaries push, so replica state never forks.
        Per-successor failures are collected rather than fatal: one dead
        replica must not stop the others from staying fresh.
        """
        if self.cluster is None or not self.node_name:
            raise ClusterError("this daemon is not part of a cluster")
        from ..replication.targets import RemoteMirror

        if repo is not None:
            names = [self.registry.validate_name(repo)]
        else:
            names = await asyncio.to_thread(self.registry.repo_names)
        doc: Dict = {
            "node": self.node_name,
            "epoch": self.cluster.epoch,
            "synced": {},
            "skipped": [],
            "errors": {},
        }
        for name in names:
            if not self.cluster.is_primary(self.node_name, name):
                doc["skipped"].append(name)
                continue
            per_successor: Dict[str, Dict] = {}
            for succ in self.cluster.successors(name):
                mirror = RemoteMirror(succ.address, name)
                try:
                    report = await self.replicate_tenant(name, mirror)
                    per_successor[succ.name] = report.as_dict()
                    self.metrics.inc("cluster.replica_syncs")
                except (ReproError, OSError) as exc:
                    doc["errors"][f"{name}->{succ.name}"] = f"{type(exc).__name__}: {exc}"
                    self.metrics.inc("cluster.replica_sync_failures")
                    self.events.log(
                        "cluster_replica_sync_failed",
                        repo=name,
                        successor=succ.name,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                finally:
                    await asyncio.to_thread(mirror.close)
            doc["synced"][name] = per_successor
        return doc

    async def _replica_sync_loop(self) -> None:
        """Background ``sync_owned`` pacemaker (``--replicate-interval``)."""
        while True:
            await asyncio.sleep(self.replicate_interval)
            if self.draining:
                return
            try:
                await self.sync_owned()
            except (ReproError, OSError) as exc:  # pragma: no cover - timing
                self.events.log(
                    "cluster_replica_sync_failed",
                    repo="*",
                    successor="*",
                    error=f"{type(exc).__name__}: {exc}",
                )

    # ------------------------------------------------------------------
    # Health-driven failover: probe -> promote -> verify -> gossip.
    # ------------------------------------------------------------------
    def adopt_cluster_map(self, doc: object, source: str = "peer") -> bool:
        """Adopt ``doc`` if it is a strictly newer epoch than our map.

        Epoch monotonicity is the whole safety story for map exchange:
        adopt-highest, never downgrade.  A daemon that learns (from any
        peer, usually via its own health probe) that a newer map marks
        *itself* down demotes: it schedules a resync pull of every hosted
        tenant from that tenant's acting primary, and until placement says
        otherwise its write fence (:meth:`ensure_write_primary`) refuses
        mutations — the rejoining old primary cannot fork history.
        """
        if self.cluster is None:
            return False
        try:
            candidate = doc if isinstance(doc, ClusterMap) else ClusterMap.from_doc(doc)
        except ClusterError:
            return False
        fresh = newer_map(self.cluster, candidate)
        if fresh is self.cluster:
            return False
        was_down = bool(self.node_name) and self.cluster.has_node(self.node_name) \
            and self.cluster.is_down(self.node_name)
        self.cluster = fresh
        self.metrics.inc("cluster.maps_adopted")
        self.events.log(
            "cluster_map_adopted",
            epoch=fresh.epoch,
            source=source,
            down=fresh.down_names(),
        )
        now_down = bool(self.node_name) and fresh.has_node(self.node_name) \
            and fresh.is_down(self.node_name)
        if now_down and not was_down:
            self.metrics.inc("cluster.demotions")
            self.events.log(
                "cluster_demoted", node=self.node_name, epoch=fresh.epoch
            )
            self._schedule_resync()
        return True

    def _schedule_resync(self) -> None:
        if self._resyncer is not None and not self._resyncer.done():
            return
        self._resyncer = asyncio.ensure_future(self._resync_demoted())

    async def _resync_demoted(self) -> None:
        """Pull every hosted tenant back in sync from its acting primary.

        Runs on a daemon that discovered (via map adoption) it was marked
        down while it was away: whatever it missed lives on the promoted
        primaries now.  Each pull is the O(delta) planner diff
        (:func:`~repro.cluster.failover.pull_tenant`) under the tenant's
        write lock, so a concurrent restore never sees a torn copy.
        """
        from ..client.remote import RemoteRepository
        from ..cluster.failover import pull_tenant

        cluster = self.cluster
        if cluster is None or not self.node_name:
            return
        epoch = cluster.epoch
        clean = True
        names = await asyncio.to_thread(self.registry.repo_names)
        for name in names:
            acting = cluster.primary(name)
            if acting.name == self.node_name or acting.down:
                continue
            remote = RemoteRepository(
                acting.address, name, timeout=max(self.probe_timeout, 10.0),
                retries=1, backoff=0.0,
            )
            try:
                handle = self.registry.get(name)
                async with handle.lock.write_locked():
                    report = await asyncio.to_thread(
                        pull_tenant, remote, handle.repository.root
                    )
                    handle.repository.invalidate()
                    # Revive gate: the pulled copy must pass the same
                    # re-hash-every-chunk check promotion demands before
                    # this node may reclaim its natural primaryship.
                    verify = await asyncio.to_thread(
                        handle.repository.verify, True
                    )
                if not verify.get("ok"):
                    clean = False
                self.metrics.inc("cluster.resyncs")
                self.events.log(
                    "cluster_resync", repo=name, source=acting.name,
                    verified=bool(verify.get("ok")), **report
                )
            except (ReproError, OSError) as exc:
                clean = False
                self.metrics.inc("cluster.resync_failures")
                self.events.log(
                    "cluster_resync_failed",
                    repo=name,
                    source=acting.name,
                    error=f"{type(exc).__name__}: {exc}",
                )
            finally:
                await asyncio.to_thread(remote.close)
        if clean:
            # Every hosted tenant is back in sync and deep-verified under
            # this epoch's placement: eligible for automatic revival.
            self._resync_clean = epoch
            self.events.log(
                "cluster_resync_clean", node=self.node_name, epoch=epoch
            )

    def _probe_once(self, address: str, offer: Dict) -> Tuple[bool, Optional[Dict]]:
        """One blocking health probe (runs in a worker thread).

        A ``CLUSTER_MAP`` round-trip with our own map attached: cheap
        liveness check and map gossip in one frame.  Short timeout, no
        retries — the health loop owns the consecutive-failure counting.
        """
        from ..client.remote import RemoteRepository

        remote = RemoteRepository(
            address, "-", timeout=self.probe_timeout, retries=1, backoff=0.0
        )
        try:
            reply = remote.cluster_map(offer=offer)
            return True, reply.get("map")
        finally:
            remote.close()

    async def _health_loop(self) -> None:
        """Probe the ring predecessor; promote after N consecutive failures.

        Every daemon probes exactly one peer — its nearest *live*
        predecessor in ring-walk order — so each node has exactly one
        watcher and a promotion has a single minting owner (the watcher is
        also the node that inherits the dead node's primaries).  Probes
        double as gossip: the peer's map rides back on the reply and newer
        epochs are adopted, which is how a rejoining stale daemon finds
        out about its own demotion within one probe interval.
        """
        failures = 0
        watched: Optional[str] = None
        while True:
            await asyncio.sleep(self.probe_interval)
            if self.draining:
                return
            cluster = self.cluster
            if cluster is None or not self.node_name:
                continue
            await self._maybe_revive()
            cluster = self.cluster  # _maybe_revive may have minted a new map
            target = cluster.probe_target(self.node_name)
            if target is None:
                continue
            if target.name != watched:
                watched = target.name
                failures = 0
            try:
                ok, peer_doc = await asyncio.to_thread(
                    self._probe_once, target.address, cluster.as_doc()
                )
            except (ReproError, OSError) as exc:
                ok, peer_doc = False, None
                error = f"{type(exc).__name__}: {exc}"
            if ok:
                failures = 0
                if peer_doc is not None:
                    self.adopt_cluster_map(peer_doc, source=target.name)
                continue
            failures += 1
            self.metrics.inc("cluster.probe_failures")
            self.events.log(
                "cluster_probe_failed",
                node=self.node_name,
                target=target.name,
                failures=failures,
                threshold=self.probe_failures,
                error=error,
            )
            if failures >= self.probe_failures:
                failures = 0
                try:
                    await self._promote_dead(target.name)
                except ClusterError:
                    # Raced with another map change (e.g. the peer was
                    # already marked down via gossip); the next probe
                    # re-reads the map and re-targets.
                    pass

    async def _maybe_revive(self) -> None:
        """Un-mark this node once its demotion resync deep-verified clean.

        The inverse of :meth:`_promote_dead`, self-minted: a daemon the
        current map marks down, whose :meth:`_resync_demoted` pulled every
        hosted tenant back in sync *and* deep-verified them under this very
        epoch, publishes an epoch-bumped map clearing its own down marker.
        Natural primaryship returns automatically — the previously promoted
        acting primary adopts the newer epoch via gossip and its write
        fence starts refusing, so clients re-route without an operator
        rebalance.
        """
        cluster = self.cluster
        if cluster is None or not self.node_name:
            return
        if not cluster.has_node(self.node_name) or not cluster.is_down(self.node_name):
            return
        if self._resync_clean != cluster.epoch:
            # Stale or missing resync: a newer epoch landed since the last
            # clean pull, so re-run the resync under it first.
            if self._resyncer is None or self._resyncer.done():
                self._schedule_resync()
            return
        try:
            revived = cluster.revive(self.node_name, by=self.node_name)
        except ClusterError:  # pragma: no cover - raced another map change
            return
        self.cluster = revived
        self._resync_clean = None
        self.metrics.inc("cluster.revivals")
        self.events.log(
            "cluster_revived", node=self.node_name, epoch=revived.epoch
        )
        await self._offer_map(revived)

    async def _promote_dead(self, dead: str) -> None:
        """Mint and adopt the failover map declaring ``dead`` down.

        Verify-before-serve: before the minted map is adopted (and hence
        before the write fence lets the first redirected write through),
        every tenant this node inherits the primary role for gets its
        local replica deep-verified — the same re-hash-every-chunk check
        the rebalancer runs before a ``TENANT_DROP``.  Tenants that fail
        (or are missing locally) stay fenced; healthy tenants start taking
        writes immediately.  The map then gossips to all live peers so
        clients can learn the new epoch from any seed.
        """
        cluster = self.cluster
        if cluster is None or not self.node_name:
            return
        promoted = cluster.promote(dead, by=self.node_name)
        names = await asyncio.to_thread(self.registry.repo_names)
        gained = [
            name
            for name in names
            if promoted.primary(name).name == self.node_name
            and cluster.primary(name).name == dead
        ]
        for name in gained:
            await self._verify_promoted(name, promoted.epoch)
        self.cluster = promoted
        self.metrics.inc("cluster.promotions")
        self.events.log(
            "cluster_promoted",
            node=self.node_name,
            dead=dead,
            epoch=promoted.epoch,
            tenants=gained,
        )
        await self._offer_map(promoted)

    async def _offer_map(self, cmap: ClusterMap) -> None:
        """Push ``cmap`` to every live peer (best effort, gossip backstop)."""
        doc = cmap.as_doc()
        for node in cmap.live_nodes():
            if node.name == self.node_name:
                continue
            try:
                await asyncio.to_thread(self._probe_once, node.address, doc)
            except (ReproError, OSError):  # pragma: no cover - peer down
                pass

    async def _verify_promoted(self, name: str, epoch: int) -> bool:
        """Deep-verify the local replica of ``name`` for promotion ``epoch``.

        The PR 7 verify-before-drop check repurposed as verify-before-
        serve: every chunk of every container is re-hashed against its
        fingerprint before this node accepts a write for a tenant it was
        promoted into.  Results are cached per (tenant, epoch); a missing
        local copy is conservatively fenced — inventing a fresh history
        for a tenant we never replicated is exactly the fork this exists
        to prevent.
        """
        key = (name, epoch)
        if key in self._promotion_ok:
            return True
        if key in self._fenced:
            return False
        try:
            handle = self.registry.get(name)
        except RemoteError:
            self._fenced.add(key)
            self.metrics.inc("cluster.promotion_verify_failures")
            self.events.log(
                "cluster_promotion_verify_failed",
                repo=name,
                epoch=epoch,
                error="no local replica",
            )
            return False
        try:
            async with handle.lock.read_locked():
                handle.active_ops += 1
                try:
                    report = await asyncio.to_thread(
                        handle.repository.verify, True
                    )
                finally:
                    handle.active_ops -= 1
        except (ReproError, OSError) as exc:
            self._fenced.add(key)
            self.metrics.inc("cluster.promotion_verify_failures")
            self.events.log(
                "cluster_promotion_verify_failed",
                repo=name,
                epoch=epoch,
                error=f"{type(exc).__name__}: {exc}",
            )
            return False
        ok = bool(report.get("ok"))
        if ok:
            self._promotion_ok.add(key)
            self.events.log(
                "cluster_promotion_verified",
                repo=name,
                epoch=epoch,
                entries=report.get("entries_checked"),
            )
        else:
            self._fenced.add(key)
            self.metrics.inc("cluster.promotion_verify_failures")
            self.events.log(
                "cluster_promotion_verify_failed",
                repo=name,
                epoch=epoch,
                error=report.get("summary", "verify failed"),
            )
        return ok

    async def ensure_write_primary(self, name: Optional[str]) -> None:
        """The write fence: refuse mutations we are not entitled to take.

        Raises :class:`NotPrimaryError` when this clustered daemon is not
        the tenant's acting primary under its current map (a stale client,
        or a rejoined old primary the client has not re-routed from), and
        when this node *is* acting primary via promotion but the replica
        has not passed its deep verify yet.  Unclustered daemons are
        unaffected.
        """
        if self.cluster is None or not self.node_name or not name:
            return
        acting = self.cluster.primary(name)
        if acting.name != self.node_name:
            raise NotPrimaryError(
                f"node {self.node_name!r} is not the primary for {name!r} "
                f"in epoch {self.cluster.epoch} ({acting.name!r} is); "
                "refresh the cluster map and retry there"
            )
        if self.cluster.natural_primary(name).name == self.node_name:
            return
        if not await self._verify_promoted(name, self.cluster.epoch):
            raise NotPrimaryError(
                f"promotion of {name!r} to node {self.node_name!r} "
                f"(epoch {self.cluster.epoch}) is not verified; "
                "writes are fenced until the replica passes deep verify"
            )

    # ------------------------------------------------------------------
    async def shutdown(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful drain: stop accepting, let sessions finish, then cancel.

        In-flight backups either complete within the drain window or are
        cancelled — cancellation aborts the engine thread, which rolls the
        repository back before the session task finishes, so this method
        only returns once every repository is in a clean state.
        """
        timeout = self.drain_timeout if drain_timeout is None else drain_timeout
        self.draining = True
        for attr in ("_prober", "_resyncer"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._syncer is not None:
            self._syncer.cancel()
            try:
                await self._syncer
            except asyncio.CancelledError:
                pass
            self._syncer = None
        if self._reporter is not None:
            self._reporter.cancel()
            try:
                await self._reporter
            except asyncio.CancelledError:
                pass
            self._reporter = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = [t for t in self._sessions if not t.done()]
        if tasks and timeout > 0:
            _done, pending = await asyncio.wait(tasks, timeout=timeout)
            tasks = list(pending)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.wait(tasks, timeout=max(5.0, timeout))
        if self.ingest_pool is not None:
            # After the drain no engine thread can touch the pool; close
            # unlinks every shared-memory slab so nothing outlives us.
            await asyncio.to_thread(self.ingest_pool.close)
        self.events.log("daemon_stop", address=self.address)


class DaemonThread:
    """Run a :class:`BackupDaemon` on a background event-loop thread.

    The harness the tests, benchmarks and examples use::

        with DaemonThread(root) as address:
            RemoteRepository(address, "tenant").backup_tree(...)

    ``kill()`` models an operator SIGTERM with no drain patience: in-flight
    backups are cancelled and rolled back before it returns.
    """

    def __init__(self, root: str, **daemon_kwargs) -> None:
        self.daemon = BackupDaemon(root, **daemon_kwargs)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, name="backup-daemon", daemon=True)
        self._stopped = False
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.daemon.start())
        except BaseException as exc:
            # Stash the failure (port already bound, bad address, ...) for
            # start() to re-raise immediately instead of timing out.
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> str:
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise ReproError("backup daemon failed to start within 10s")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self.daemon.address

    @property
    def address(self) -> str:
        return self.daemon.address

    def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Drain gracefully, stop the loop, join the thread."""
        if self._stopped:
            return
        self._stopped = True
        if self._startup_error is not None or not self._thread.is_alive():
            self._thread.join(timeout=10)
            return
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.shutdown(drain_timeout), self._loop
        )
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def kill(self) -> None:
        """Shut down with zero drain patience (in-flight work rolls back)."""
        self.stop(drain_timeout=0)

    def pause_accepting(self, timeout: float = 10.0) -> None:
        """Partition this daemon: refuse new connections (chaos harness)."""
        asyncio.run_coroutine_threadsafe(
            self.daemon.pause_accepting(), self._loop
        ).result(timeout=timeout)

    def resume_accepting(self, timeout: float = 10.0) -> None:
        """Heal a :meth:`pause_accepting` partition."""
        asyncio.run_coroutine_threadsafe(
            self.daemon.resume_accepting(), self._loop
        ).result(timeout=timeout)

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
