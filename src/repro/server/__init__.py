"""The networked backup service: an asyncio daemon over HiDeStore repos.

The paper positions HiDeStore as *middleware between backup clients and
storage* (§4, Fig. 1); this package is that deployment shape.
:class:`BackupDaemon` serves the length-prefixed frame protocol defined in
:mod:`repro.client.protocol` over TCP, hosting multiple named repositories
(:class:`RepositoryRegistry`) with per-repo writer locks, credit-window
ingest backpressure and graceful drain on shutdown.
"""

from .daemon import BackupDaemon, DaemonThread
from .registry import ReadWriteLock, RepositoryRegistry

__all__ = ["BackupDaemon", "DaemonThread", "ReadWriteLock", "RepositoryRegistry"]
