"""Multi-tenant repository registry + the per-repo concurrency discipline.

One daemon hosts many named repositories under a single root directory::

    <root>/<repo-name>/containers/…
    <root>/<repo-name>/recipes/…
    <root>/<repo-name>/manifests/…
    <root>/<repo-name>/checkpoint.json

The root may equally be a backend URL (:mod:`repro.storage.backend`):
``sqlite://`` roots keep one ``<name>.db`` per tenant, object-store roots
one key prefix per tenant, and a ``?archive=URL`` cold tier fans out with
the same per-tenant suffix (see :meth:`RepoLocation.child`).

Each repository carries an async :class:`ReadWriteLock`: ingest and
deletion take the *write* side (serialised — HiDeStore's double cache
deduplicates a version against its predecessor, so concurrent writers to
one repo make no semantic sense), while restores and stats take the *read*
side and run concurrently — with each other and with everything happening
on other repositories.
"""

from __future__ import annotations

import asyncio
import os
import re
import shutil
import threading
from contextlib import asynccontextmanager
from typing import Dict, List

from ..errors import RemoteError
from ..observability import MetricsRegistry
from ..repository import LocalRepository
from ..storage.backend import RepoLocation, parse_repo_spec
from ..storage.repo import is_repo_url

#: Tenant names: filesystem-safe, no traversal, no hidden dirs.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ReadWriteLock:
    """Writer-exclusive, reader-shared asyncio lock.

    Writers serialise against each other and against all readers; readers
    only wait while a writer holds (or is acquiring) the lock.  The waiter
    count feeds the ``STATS`` frame's queue-depth gauge.
    """

    def __init__(self) -> None:
        self._gate = asyncio.Lock()
        self._readers = 0
        self._no_readers = asyncio.Event()
        self._no_readers.set()
        self.write_waiters = 0

    @asynccontextmanager
    async def read_locked(self):
        async with self._gate:  # blocks while a writer is active
            self._readers += 1
            self._no_readers.clear()
        try:
            yield
        finally:
            self._readers -= 1
            if self._readers == 0:
                self._no_readers.set()

    @asynccontextmanager
    async def write_locked(self):
        self.write_waiters += 1  # gauges queued + active writers
        try:
            async with self._gate:
                await self._no_readers.wait()
                yield
        finally:
            self.write_waiters -= 1


class RepoHandle:
    """One hosted repository: engine front end, lock, service counters."""

    def __init__(
        self,
        name: str,
        root: str,
        history_depth: int,
        compress: bool,
        metrics: "MetricsRegistry | None" = None,
        ingest_pool=None,
    ) -> None:
        self.name = name
        self.repository = LocalRepository(
            root, history_depth=history_depth, compress=compress, metrics=metrics,
            ingest_pool=ingest_pool,
        )
        self.lock = ReadWriteLock()
        self.active_ops = 0
        self.counters: Dict[str, int] = {
            "backups": 0,
            "backups_failed": 0,
            "bytes_ingested": 0,
            "chunks_ingested": 0,
            "restores": 0,
            "bytes_restored": 0,
            "deletes": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------
    def note_backup(self, report: Dict) -> None:
        self.counters["backups"] += 1
        self.counters["bytes_ingested"] += int(report.get("logical_bytes", 0))
        self.counters["chunks_ingested"] += int(report.get("total_chunks", 0))

    def note_backup_failed(self) -> None:
        self.counters["backups_failed"] += 1

    def note_restore(self, nbytes: int) -> None:
        self.counters["restores"] += 1
        self.counters["bytes_restored"] += nbytes

    def note_delete(self) -> None:
        self.counters["deletes"] += 1

    def note_error(self) -> None:
        self.counters["errors"] += 1

    def stats(self) -> Dict:
        """The per-repo ``STATS`` document (repository + service counters)."""
        doc = dict(self.repository.stats())
        doc["repo"] = self.name
        doc["counters"] = dict(self.counters)
        doc["active_sessions"] = self.active_ops
        doc["write_queue_depth"] = self.lock.write_waiters
        return doc


class RepositoryRegistry:
    """Maps tenant names to live :class:`RepoHandle` instances."""

    def __init__(
        self,
        root: str,
        history_depth: int = 1,
        compress: bool = False,
        metrics: "MetricsRegistry | None" = None,
        ingest_pool=None,
    ) -> None:
        self.root = root
        self.history_depth = history_depth
        self.compress = compress
        self.metrics = metrics
        #: Daemon-lifetime shared chunking pool, handed to every tenant's
        #: repository (``None`` keeps the serial inline ingest path).
        self.ingest_pool = ingest_pool
        #: Parsed location for backend-URL roots; ``None`` keeps the
        #: historical directory-per-tenant fast path below.
        self.location: "RepoLocation | None" = (
            parse_repo_spec(root) if is_repo_url(root) else None
        )
        if self.location is None:
            os.makedirs(root, exist_ok=True)
        elif self.location.scheme in ("file", "sqlite"):
            # Both schemes key tenants off a local directory (per-tenant
            # subdirectory / per-tenant .db file); object stores need no
            # local skeleton.
            os.makedirs(self.location.path, exist_ok=True)
        self._handles: Dict[str, RepoHandle] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def validate_name(self, name: object) -> str:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise RemoteError(
                f"invalid repository name {name!r}: use 1-64 of [A-Za-z0-9._-], "
                "not starting with a dot or dash"
            )
        return name

    def get(self, name: object, create: bool = False) -> RepoHandle:
        """The handle for ``name``; ``create=False`` requires it to exist."""
        name = self.validate_name(name)
        with self._lock:
            handle = self._handles.get(name)
            if handle is not None:
                return handle
            if self.location is None:
                repo_root = os.path.join(self.root, name)
                if not create and not os.path.isdir(repo_root):
                    raise RemoteError(f"unknown repository {name!r}")
            else:
                repo_root = self.location.child(name)
                if not create and not parse_repo_spec(repo_root).exists():
                    raise RemoteError(f"unknown repository {name!r}")
            handle = RepoHandle(
                name, repo_root, self.history_depth, self.compress, self.metrics,
                ingest_pool=self.ingest_pool,
            )
            self._handles[name] = handle
            return handle

    def drop(self, name: str) -> int:
        """Remove one tenant's storage entirely; returns objects removed.

        Rebalance cleanup: the caller must hold the tenant's write lock
        (no in-flight operation survives the removal) and must only call
        this after the tenant's new home deep-verified its copy.  Directory
        tenants are removed recursively; backend-URL tenants have every
        replicable object deleted plus their local skeleton (sqlite ``.db``
        file / per-tenant directory).
        """
        name = self.validate_name(name)
        with self._lock:
            self._handles.pop(name, None)
            if self.location is None:
                repo_root = os.path.join(self.root, name)
                if not os.path.isdir(repo_root):
                    return 0
                shutil.rmtree(repo_root)
                return 1
            from ..storage.repo import RepoStorage

            spec = self.location.child(name)
            removed = 0
            storage = RepoStorage(spec)
            try:
                if storage.exists():
                    state = storage.state()
                    for kind, section in (
                        ("container", "containers"),
                        ("recipe", "recipes"),
                        ("manifest", "manifests"),
                    ):
                        for short in state[section]:
                            storage.delete_object(kind, short)
                            removed += 1
                    if state["checkpoint"]:
                        storage.delete_object("checkpoint", "checkpoint.json")
                        removed += 1
            finally:
                storage.close()
            if self.location.scheme == "file":
                path = os.path.join(self.location.path, name)
                if os.path.isdir(path):
                    shutil.rmtree(path)
                    removed = max(removed, 1)
            elif self.location.scheme == "sqlite":
                path = os.path.join(self.location.path, name + ".db")
                if os.path.exists(path):
                    os.remove(path)
                    removed = max(removed, 1)
            return removed

    def repo_names(self) -> List[str]:
        """Every hosted repository: on the backend plus opened this session."""
        names = set(self._handles)
        if self.location is not None:
            names.update(
                entry for entry in self.location.tenant_names()
                if _NAME_RE.match(entry)
            )
        elif os.path.isdir(self.root):
            for entry in os.listdir(self.root):
                if _NAME_RE.match(entry) and os.path.isdir(os.path.join(self.root, entry)):
                    names.add(entry)
        return sorted(names)

    def stats(self, name: str) -> Dict:
        """One repo's stats document.

        There is deliberately no all-repos aggregate here: sampling a repo
        while a backup or rollback mutates it violates the serialization
        contract, so the daemon iterates :meth:`repo_names` itself and
        takes each handle's read lock before calling ``handle.stats()``.
        """
        return self.get(name).stats()
