"""Repository storage composition: one place that knows where bytes live.

A repository is four object kinds — containers, recipes, manifests, the
checkpoint — and :class:`RepoStorage` maps each kind onto the storage
backends a repo spec names (see :class:`~repro.storage.backend.
RepoLocation`).  The default mapping puts everything on the primary
backend; a spec with ``?archive=URL`` sends the **sealed containers** to
the archive backend (the cold tier) while the mutable metadata stays on
the primary (hot) backend — safe precisely because sealed containers are
immutable (§4.2), so a container object reads identically from any tier.

Plain ``file://`` repositories keep the historical directory layout and
the historical store classes (:class:`FileContainerStore`,
:class:`FileRecipeStore`), so a pre-backend repository opens unchanged and
a new one is byte-identical to what older versions wrote.

Beyond the engine stores, this module exposes the *replicable-object*
surface (read/write/commit/state by kind + name) that replication,
repair, and backup rollback drive — one implementation for every
backend instead of the file-only helpers they grew up with.
"""

from __future__ import annotations

import json
import os
import re
import socket
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ObjectMissingError, ReplicationError, ReproError
from ..observability import MetricsRegistry, get_registry
from .backend import RepoLocation, StorageBackend, parse_repo_spec
from .container_store import BackendContainerStore, ContainerStore, FileContainerStore
from .recipe import BackendRecipeStore, FileRecipeStore, RecipeStore

__all__ = ["RepoStorage", "is_repo_url", "KINDS", "STAGED_SUFFIX"]

#: Replicable object kinds (ship order: containers are invisible until a
#: recipe references them; the checkpoint commits last).
KINDS = ("container", "manifest", "recipe", "checkpoint")

#: Suffix of staged (shipped but not yet committed) mirror objects.
STAGED_SUFFIX = ".staged"

_PREFIXES = {
    "container": "containers/",
    "recipe": "recipes/",
    "manifest": "manifests/",
    "checkpoint": "",
}

_PATTERNS = {
    "container": re.compile(r"^container-(\d{8})\.hdsc$"),
    "recipe": re.compile(r"^recipe-(\d{8})\.hdsr$"),
    "manifest": re.compile(r"^manifest-(\d{8})\.txt$"),
    "checkpoint": re.compile(r"^checkpoint\.json$"),
}


def is_repo_url(spec: str) -> bool:
    """Whether a repo spec needs backend routing (URL scheme or options).

    Bare directory paths — the historical form — return ``False`` and keep
    the direct-filesystem code paths everywhere.
    """
    return "://" in spec or "?archive=" in spec


class RepoStorage:
    """All reads and writes of one repository's objects, by kind.

    Args:
        spec: a repo spec string or a parsed :class:`RepoLocation`.
        compress: zlib-compress container blobs (engine stores only).
        metrics: registry forwarded to the container store.
    """

    def __init__(
        self,
        spec: Union[str, RepoLocation],
        compress: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.location = spec if isinstance(spec, RepoLocation) else parse_repo_spec(spec)
        self.compress = compress
        self.metrics = metrics if metrics is not None else get_registry()
        self._primary: Optional[StorageBackend] = None
        self._archive: Optional[StorageBackend] = None

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    @property
    def is_plain_file(self) -> bool:
        """Single-tier ``file://`` repository: the historical layout."""
        return self.location.is_file

    def primary(self) -> StorageBackend:
        if self._primary is None:
            self._primary = self.location.open_primary()
        return self._primary

    def container_backend(self) -> StorageBackend:
        """Where sealed containers live: the cold tier when one is named."""
        if self.location.archive_url is None:
            return self.primary()
        if self._archive is None:
            self._archive = self.location.open_archive()
        return self._archive

    def _backend_for(self, kind: str) -> StorageBackend:
        return self.container_backend() if kind == "container" else self.primary()

    def _object_name(self, kind: str, name: str) -> str:
        pattern = _PATTERNS.get(kind)
        if pattern is None:
            raise ReplicationError(f"unknown replication object kind {kind!r}")
        if not isinstance(name, str) or not pattern.match(name):
            raise ReplicationError(f"invalid {kind} object name {name!r}")
        return _PREFIXES[kind] + name

    def prepare(self) -> None:
        """Create the directory skeleton a fresh file repository expects."""
        if self.location.scheme == "file":
            os.makedirs(os.path.join(self.location.path, "manifests"), exist_ok=True)

    def close(self) -> None:
        for backend in (self._primary, self._archive):
            if backend is not None:
                backend.close()
        self._primary = self._archive = None

    def exists(self) -> bool:
        return self.location.exists()

    # ------------------------------------------------------------------
    # Engine stores
    # ------------------------------------------------------------------
    def container_store(self) -> ContainerStore:
        if self.is_plain_file:
            return FileContainerStore(
                os.path.join(self.location.path, "containers"),
                compress=self.compress,
                metrics=self.metrics,
            )
        return BackendContainerStore(
            self.container_backend(),
            compress=self.compress,
            metrics=self.metrics,
            prefix=_PREFIXES["container"],
        )

    def recipe_store(self) -> RecipeStore:
        if self.is_plain_file or self.location.scheme == "file":
            return FileRecipeStore(os.path.join(self.location.path, "recipes"))
        return BackendRecipeStore(self.primary(), prefix=_PREFIXES["recipe"])

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------
    @staticmethod
    def manifest_name(version_id: int) -> str:
        return f"manifest-{version_id:08d}.txt"

    def write_manifest(self, version_id: int, text: str) -> None:
        name = self._object_name("manifest", self.manifest_name(version_id))
        self.primary().put_meta(name, text.encode("utf-8"))

    def read_manifest(self, version_id: int) -> Optional[str]:
        name = self._object_name("manifest", self.manifest_name(version_id))
        try:
            return self.primary().get(name).decode("utf-8")
        except ObjectMissingError:
            return None

    def delete_manifest(self, version_id: int) -> None:
        name = self._object_name("manifest", self.manifest_name(version_id))
        try:
            self.primary().delete(name)
        except ObjectMissingError:
            pass

    def manifest_ids(self) -> List[int]:
        ids = []
        prefix = _PREFIXES["manifest"]
        for name in self.primary().list(prefix):
            match = _PATTERNS["manifest"].match(name[len(prefix) :])
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def has_checkpoint(self) -> bool:
        return self.primary().exists("checkpoint.json")

    def read_checkpoint_document(self) -> Dict:
        try:
            blob = self.primary().get("checkpoint.json")
        except ObjectMissingError:
            raise ReproError(f"no checkpoint in {self.location.spec}") from None
        return json.loads(blob.decode("utf-8"))

    def write_checkpoint_document(self, document: Dict) -> None:
        self.primary().put_meta("checkpoint.json", json.dumps(document).encode("utf-8"))

    # ------------------------------------------------------------------
    # Replicable-object surface (replication / repair / rollback)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Dict[str, Dict]]:
        """Snapshot the repository's replicable objects (a ``RepoState``).

        Containers carry size only (immutable once visible; presence +
        size is the whole identity), digest-bearing kinds carry both —
        the same shape :func:`repro.replication.state.capture_state`
        produces for plain directories.
        """
        state: Dict[str, Dict[str, Dict]] = {
            "containers": {},
            "recipes": {},
            "manifests": {},
            "checkpoint": {},
        }
        backend = self.container_backend()
        prefix = _PREFIXES["container"]
        for name in backend.list(prefix):
            short = name[len(prefix) :]
            if _PATTERNS["container"].match(short):
                state["containers"][short] = {"size": backend.size(name)}
        primary = self.primary()
        for kind, section in (("recipe", "recipes"), ("manifest", "manifests")):
            prefix = _PREFIXES[kind]
            for name in primary.list(prefix):
                short = name[len(prefix) :]
                if _PATTERNS[kind].match(short):
                    state[section][short] = {
                        "size": primary.size(name),
                        "digest": primary.digest(name),
                    }
        if primary.exists("checkpoint.json"):
            state["checkpoint"]["checkpoint.json"] = {
                "size": primary.size("checkpoint.json"),
                "digest": primary.digest("checkpoint.json"),
            }
        return state

    def identity(self) -> Dict[str, str]:
        """Where this repository physically lives, for self-sync detection.

        ``file://`` repositories keep the historical host + realpath form
        (so a URL spec and the bare path it names compare equal); other
        schemes use an empty host plus the canonical URL — an address that
        is the same from every client machine, which is exactly the
        self-sync question for shared backends.
        """
        if self.location.scheme == "file":
            return {
                "host": socket.gethostname(),
                "path": os.path.realpath(self.location.path),
            }
        return {"host": "", "path": self.location.canonical_url()}

    def read_object(self, kind: str, name: str) -> bytes:
        return self._backend_for(kind).get(self._object_name(kind, name))

    def object_exists(self, kind: str, name: str) -> bool:
        return self._backend_for(kind).exists(self._object_name(kind, name))

    def write_object(self, kind: str, name: str, blob: bytes, staged: bool = False) -> None:
        """Atomically land one object (optionally as ``*.staged``).

        Mirror-side writes replace — repair lands a validated blob over a
        damaged container, recipes/checkpoint rewrite by design —
        immutability of live containers is enforced by the container
        store, not here.
        """
        target = self._object_name(kind, name)
        if staged:
            target += STAGED_SUFFIX
        self._backend_for(kind).put_meta(target, blob)

    def delete_object(self, kind: str, name: str) -> None:
        try:
            self._backend_for(kind).delete(self._object_name(kind, name))
        except ObjectMissingError:
            pass

    def commit_objects(
        self, renames: List[Tuple[str, str]], deletes: List[Tuple[str, str]]
    ) -> int:
        """Flip staged objects live and apply deletions; returns ops applied.

        Idempotent: a rename whose staged object is gone but whose final
        object exists already happened; a delete of a missing object
        already happened.
        """
        applied = 0
        for kind, name in renames:
            target = self._object_name(kind, name)
            backend = self._backend_for(kind)
            if backend.exists(target + STAGED_SUFFIX):
                backend.rename(target + STAGED_SUFFIX, target)
                applied += 1
            elif not backend.exists(target):
                raise ReplicationError(
                    f"commit: no staged or final {kind} {name!r} on the mirror"
                )
        for kind, name in deletes:
            target = self._object_name(kind, name)
            try:
                self._backend_for(kind).delete(target)
                applied += 1
            except ObjectMissingError:
                pass
        return applied

    # ------------------------------------------------------------------
    # Container-object helpers (rollback / repair scans)
    # ------------------------------------------------------------------
    def container_object_ids(self) -> List[int]:
        """IDs of container objects present, straight off the backend."""
        backend = self.container_backend()
        prefix = _PREFIXES["container"]
        ids = []
        for name in backend.list(prefix):
            match = _PATTERNS["container"].match(name[len(prefix) :])
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def delete_container_object(self, container_id: int) -> None:
        name = _PREFIXES["container"] + f"container-{container_id:08d}.hdsc"
        try:
            self.container_backend().delete(name)
        except ObjectMissingError:
            pass

    def sweep(self) -> None:
        """Remove crash litter on every backend this repository uses."""
        self.primary().sweep_tmp()
        if self.location.archive_url is not None:
            self.container_backend().sweep_tmp()
