"""S3-style object-store backend: ranged GETs over a minimal HTTP dialect.

``s3://HOST:PORT/BUCKET[/PREFIX]`` names a bucket (and optional key
prefix) on an S3-compatible endpoint speaking the small dialect the
local :class:`~repro.storage.fake_s3.FakeS3Server` implements:

* ``GET /bucket/key`` — object bytes; with a ``Range: bytes=a-b`` header
  a ``206 Partial Content`` slice (this is what feeds the prefetching
  restore reader pool with **parallel ranged GETs**);
* ``PUT /bucket/key`` — store; with ``If-None-Match: *`` the server
  answers ``412`` when the key exists (immutable-put enforcement for
  sealed containers, §4.2);
* ``HEAD /bucket/key`` — existence + ``Content-Length``;
* ``GET /bucket/key?digest=1`` — hex sha256 without shipping the bytes;
* ``DELETE /bucket/key``;
* ``GET /bucket?prefix=P`` — newline-separated key listing.

Connections are kept alive **per thread** so the reader pool's N worker
threads hold N sockets and their ranged GETs genuinely overlap — one
shared connection would serialise them and the restore-throughput
scaling the bench asserts (≥1.3× at 4 workers) would vanish.

No boto3, no TLS, no auth: this is the locality middleware's placement
seam, not a cloud SDK.  Anything speaking this dialect (including a real
S3 gateway with a thin shim) can hold the cold tier.
"""

from __future__ import annotations

import hashlib
import http.client
import socket
import threading
from typing import List, Optional, Tuple
from urllib.parse import quote, unquote

from ..errors import ObjectMissingError, StorageError
from .backend import validate_object_name

__all__ = ["ObjectStoreBackend", "parse_object_store_url"]


def parse_object_store_url(url: str) -> Tuple[str, int, str, str]:
    """Split ``s3://host:port/bucket[/prefix]`` → (host, port, bucket, prefix)."""
    if not url.startswith("s3://"):
        raise StorageError(f"not an object-store URL: {url!r}")
    rest = url[len("s3://") :]
    endpoint, _, keyspace = rest.partition("/")
    host, _, port_text = endpoint.partition(":")
    if not host or not port_text:
        raise StorageError(
            f"object-store URL {url!r} must name host:port (e.g. s3://127.0.0.1:9000/bucket)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise StorageError(f"bad port in object-store URL {url!r}") from None
    keyspace = unquote(keyspace).strip("/")
    if not keyspace:
        raise StorageError(f"object-store URL {url!r} must name a bucket")
    bucket, _, prefix = keyspace.partition("/")
    return host, port, bucket, prefix


class ObjectStoreBackend:
    """HTTP client for the S3-style dialect (see module docstring).

    Thread-safe: each thread gets its own persistent
    :class:`http.client.HTTPConnection`, so parallel readers issue
    concurrent ranged GETs without serialising on a shared socket.
    """

    prefers_ranged_reads = True

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.host, self.port, self.bucket, self.prefix = parse_object_store_url(url)
        self.url = f"s3://{self.host}:{self.port}/{self.bucket}" + (
            f"/{self.prefix}" if self.prefix else ""
        )
        self.timeout = timeout
        self._local = threading.local()
        self._conns: List[http.client.HTTPConnection] = []
        self._conns_lock = threading.Lock()

    # -- plumbing ------------------------------------------------------
    def _key(self, name: str) -> str:
        validate_object_name(name)
        key = f"{self.prefix}/{name}" if self.prefix else name
        return quote(f"/{self.bucket}/{key}", safe="/")

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        conn = self._conn()
        for attempt in (0, 1):  # one retry on a dropped keep-alive socket
            try:
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
                payload = response.read()
                return response.status, payload, dict(response.getheaders())
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError):
                conn.close()
                if attempt:
                    raise
        raise StorageError("unreachable")  # pragma: no cover

    def _raise_for(self, status: int, name: str, payload: bytes) -> None:
        if status == 404:
            raise ObjectMissingError(f"no object {name!r} in {self.url}")
        detail = payload[:200].decode("utf-8", "replace")
        raise StorageError(f"object store {self.url}: HTTP {status} for {name!r}: {detail}")

    # -- protocol ------------------------------------------------------
    def put(self, name: str, blob: bytes) -> None:
        status, payload, _ = self._request(
            "PUT", self._key(name), body=blob, headers={"If-None-Match": "*"}
        )
        if status == 412:
            raise StorageError(f"immutable object {name!r} already stored")
        if status not in (200, 201, 204):
            self._raise_for(status, name, payload)

    def put_meta(self, name: str, blob: bytes) -> None:
        status, payload, _ = self._request("PUT", self._key(name), body=blob)
        if status not in (200, 201, 204):
            self._raise_for(status, name, payload)

    def get(self, name: str) -> bytes:
        status, payload, _ = self._request("GET", self._key(name))
        if status != 200:
            self._raise_for(status, name, payload)
        return payload

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        if length <= 0:
            return b""
        headers = {"Range": f"bytes={offset}-{offset + length - 1}"}
        status, payload, _ = self._request("GET", self._key(name), headers=headers)
        if status == 206:
            return payload
        if status == 200:  # server ignored the Range header; slice locally
            return payload[offset : offset + length]
        if status == 416:  # range entirely past EOF — mirror file semantics
            return b""
        self._raise_for(status, name, payload)
        raise StorageError("unreachable")  # pragma: no cover

    def exists(self, name: str) -> bool:
        status, _, _ = self._request("HEAD", self._key(name))
        if status == 200:
            return True
        if status == 404:
            return False
        raise StorageError(f"object store {self.url}: HTTP {status} for HEAD {name!r}")

    def size(self, name: str) -> int:
        status, _, headers = self._request("HEAD", self._key(name))
        if status != 200:
            if status == 404:
                raise ObjectMissingError(f"no object {name!r} in {self.url}")
            raise StorageError(f"object store {self.url}: HTTP {status} for HEAD {name!r}")
        try:
            return int(headers.get("Content-Length", ""))
        except ValueError:
            raise StorageError(
                f"object store {self.url}: missing Content-Length for {name!r}"
            ) from None

    def digest(self, name: str) -> str:
        status, payload, _ = self._request("GET", self._key(name) + "?digest=1")
        if status == 200:
            text = payload.decode("ascii", "replace").strip()
            if len(text) == 64:
                return text
        if status == 404:
            raise ObjectMissingError(f"no object {name!r} in {self.url}")
        # Endpoint without digest support: fall back to hashing the bytes.
        return hashlib.sha256(self.get(name)).hexdigest()

    def delete(self, name: str) -> None:
        status, payload, _ = self._request("DELETE", self._key(name))
        if status not in (200, 204):
            self._raise_for(status, name, payload)

    def list(self, prefix: str = "") -> List[str]:
        full = f"{self.prefix}/{prefix}" if self.prefix else prefix
        path = quote(f"/{self.bucket}", safe="/") + "?prefix=" + quote(full, safe="")
        status, payload, _ = self._request("GET", path)
        if status == 404:
            return []
        if status != 200:
            raise StorageError(f"object store {self.url}: HTTP {status} for list")
        keys = [line for line in payload.decode("utf-8").splitlines() if line]
        if self.prefix:
            strip = self.prefix + "/"
            keys = [key[len(strip) :] for key in keys if key.startswith(strip)]
        return sorted(keys)

    def rename(self, name: str, new_name: str) -> None:
        blob = self.get(name)
        self.put_meta(new_name, blob)
        self.delete(name)

    def sweep_tmp(self, prefix: str = "") -> None:  # PUTs are atomic server-side
        pass

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
