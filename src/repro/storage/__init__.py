"""Storage substrate: containers, container stores, recipes, I/O accounting.

This is the persistent layer every deduplication scheme in the package sits
on.  All reads and writes are billed to an :class:`~repro.storage.io_model.IOStats`
ledger, from which the paper's hardware-independent metrics (container reads,
speed factor, lookup requests) are computed.
"""

from .container import ChunkSlot, Container
from .container_store import (
    ContainerStore,
    FileContainerStore,
    MemoryContainerStore,
    pack_container,
    unpack_container,
)
from .io_model import DiskModel, IOStats
from .recipe import (
    ACTIVE_CID,
    FileRecipeStore,
    MemoryRecipeStore,
    Recipe,
    RecipeEntry,
    RecipeStore,
    pack_recipe,
    unpack_recipe,
)

__all__ = [
    "ACTIVE_CID",
    "ChunkSlot",
    "Container",
    "ContainerStore",
    "DiskModel",
    "FileContainerStore",
    "FileRecipeStore",
    "IOStats",
    "MemoryContainerStore",
    "MemoryRecipeStore",
    "pack_container",
    "unpack_container",
    "Recipe",
    "RecipeEntry",
    "RecipeStore",
    "pack_recipe",
    "unpack_recipe",
]
