"""Container stores: where sealed containers live, with read accounting.

Several backends share one interface:

* :class:`MemoryContainerStore` — keeps containers as Python objects; the
  default for simulation and benchmarks (every read still bills
  :class:`~repro.storage.io_model.IOStats`, which is what the paper's
  metrics are computed from).
* :class:`BackendContainerStore` — serialises containers as named
  immutable blobs on any :class:`~repro.storage.backend.StorageBackend`
  (``file://``, ``sqlite://``, ``s3://``).  On backends that prefer
  ranged reads it can fetch only the chunk ranges a restore plan needs
  (:meth:`~BackendContainerStore.read_chunks`) instead of whole blobs.
* :class:`FileContainerStore` — the historical one-file-per-container
  layout, re-expressed as :class:`BackendContainerStore` over a
  ``file://`` backend; byte-identical to what it always wrote.

Container IDs are allocated by the store, strictly increasing from 1.
ID ``0`` and negative IDs never name containers — HiDeStore's recipes use
them as "in active containers" / "see recipe R_n" markers.
"""

from __future__ import annotations

import struct
import time
import zlib
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional

from ..errors import ObjectMissingError, StorageError, UnknownChunkError, UnknownContainerError
from ..observability import MetricsRegistry, get_registry
from ..units import CONTAINER_SIZE, FINGERPRINT_SIZE
from .backend import FileBackend, StorageBackend, wrap_backend
from .container import Container
from .io_model import IOStats


class ContainerStore(ABC):
    """Abstract sealed-container repository with I/O accounting.

    **ID-allocation contract** (part of the backend protocol; exercised by
    checkpoint reload and by ``tests/test_storage_backend.py``):

    * :meth:`allocate` hands out strictly increasing IDs starting at 1;
    * :attr:`next_id` always names the ID the next :meth:`allocate`
      returns;
    * :meth:`reserve_ids(upto) <reserve_ids>` guarantees
      ``next_id == max(next_id, upto + 1)`` — it never moves IDs
      backwards, so replaying a stale checkpoint cannot re-issue an ID a
      stored container already uses;
    * stores that can discover existing containers on open (every
      persistent backend) must resume allocation above the highest stored
      ID, even without a checkpoint.
    """

    def __init__(self, capacity: int = CONTAINER_SIZE, stats: Optional[IOStats] = None) -> None:
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._next_id = 1

    # ------------------------------------------------------------------
    def allocate(self) -> Container:
        """Create a fresh, open container with the next global ID."""
        container = Container(self._next_id, self.capacity)
        self._next_id += 1
        return container

    @property
    def next_id(self) -> int:
        """The ID the next :meth:`allocate` call will hand out."""
        return self._next_id

    def reserve_ids(self, upto: int) -> None:
        """Ensure future allocations start above ``upto`` (checkpoint reload)."""
        if upto >= self._next_id:
            self._next_id = upto + 1

    # ------------------------------------------------------------------
    @abstractmethod
    def write(self, container: Container) -> None:
        """Seal and persist a container (bills one container write)."""

    @abstractmethod
    def read(self, container_id: int) -> Container:
        """Fetch a container by ID (bills one container read)."""

    @abstractmethod
    def delete(self, container_id: int) -> None:
        """Remove a container (expired-version reclamation)."""

    @abstractmethod
    def __contains__(self, container_id: int) -> bool: ...

    @abstractmethod
    def container_ids(self) -> List[int]: ...

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.container_ids())

    def stored_bytes(self) -> int:
        """Total live payload bytes across all stored containers (unbilled)."""
        return sum(self.peek(cid).used for cid in self.container_ids())

    def peek(self, container_id: int) -> Container:
        """Fetch a container *without* billing a read (metrics/test use only)."""
        raise NotImplementedError

    def iter_containers(self) -> Iterator[Container]:
        """Iterate containers without billing reads (metrics/test use only)."""
        for cid in self.container_ids():
            yield self.peek(cid)


class MemoryContainerStore(ContainerStore):
    """In-memory store: the simulation substrate used by all benchmarks."""

    def __init__(self, capacity: int = CONTAINER_SIZE, stats: Optional[IOStats] = None) -> None:
        super().__init__(capacity, stats)
        self._containers: Dict[int, Container] = {}

    def write(self, container: Container) -> None:
        if container.container_id in self._containers:
            raise StorageError(f"container {container.container_id} already stored")
        container.seal()
        self._containers[container.container_id] = container
        self.stats.note_container_write(container.used)

    def read(self, container_id: int) -> Container:
        try:
            container = self._containers[container_id]
        except KeyError:
            raise UnknownContainerError(f"no container {container_id}") from None
        self.stats.note_container_read(container.used)
        return container

    def peek(self, container_id: int) -> Container:
        try:
            return self._containers[container_id]
        except KeyError:
            raise UnknownContainerError(f"no container {container_id}") from None

    def delete(self, container_id: int) -> None:
        if self._containers.pop(container_id, None) is None:
            raise UnknownContainerError(f"no container {container_id}")

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._containers

    def container_ids(self) -> List[int]:
        return sorted(self._containers)


_MAGIC = b"HDSC"
_HEADER = struct.Struct("<4sIIQ")  # magic, container_id, chunk_count, capacity
_ENTRY = struct.Struct(f"<{FINGERPRINT_SIZE}sIIB")  # fp, offset, size, has_data


def pack_container(container: Container) -> bytes:
    """Serialise a container (metadata + payload region) to bytes."""
    entries = []
    payload = bytearray()
    for fp, slot in container.items():
        has_data = 1 if slot.data is not None else 0
        entries.append(_ENTRY.pack(fp, slot.offset, slot.size, has_data))
        if slot.data is not None:
            payload.extend(slot.data)
    return (
        _HEADER.pack(_MAGIC, container.container_id, container.chunk_count, container.capacity)
        + b"".join(entries)
        + bytes(payload)
    )


def unpack_container(blob: bytes, expected_id: Optional[int] = None) -> Container:
    """Parse :func:`pack_container` output back into an (unsealed) container.

    Chunks are re-appended in offset order, so holes left by removals are
    compacted away on load; the logical contents are identical.
    """
    from ..chunking.stream import Chunk

    magic, cid, count, capacity = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC or (expected_id is not None and cid != expected_id):
        raise StorageError("corrupt container blob")
    container = Container(cid, capacity)
    offset = _HEADER.size
    metas = []
    for _ in range(count):
        fp, chunk_offset, size, has_data = _ENTRY.unpack_from(blob, offset)
        metas.append((fp, chunk_offset, size, has_data))
        offset += _ENTRY.size
    payload_base = offset
    cursor = 0
    for fp, chunk_offset, size, has_data in sorted(metas, key=lambda m: m[1]):
        data = None
        if has_data:
            data = blob[payload_base + cursor : payload_base + cursor + size]
            cursor += size
        container.add(Chunk(fp, size, data))
    return container


_COMPRESSED_MAGIC = b"HDSZ"


#: Coalesce ranged chunk reads whose payload gap is below this many bytes:
#: one slightly larger GET beats two round trips to an object store.
_COALESCE_GAP = 64 * 1024


class BackendContainerStore(ContainerStore):
    """Containers as named immutable blobs on a :class:`StorageBackend`.

    Object names are ``<prefix>container-%08d.hdsc``; the blob layout is
    header, metadata entries (the container's hash table), then the
    payload region.  Metadata-only chunks (simulated streams) serialise
    with a zero payload flag so round-trips preserve ``data=None``.

    On backends that advertise ``prefers_ranged_reads``,
    :meth:`read_chunks` serves a restore plan's slots with ranged reads
    of just the entry table and the needed payload spans — the paper's
    whole-container read becomes a handful of parallel ranged GETs while
    the **billing stays whole-container** (reading any chunk still costs
    one logical container read in :class:`IOStats`), so simulation
    numbers are comparable across backends.

    Args:
        backend: where the blobs live.
        prefix: object-name prefix, e.g. ``"containers/"`` when the
            backend holds a whole repository.
        compress: zlib-compress container blobs (transparent on read;
            compressed and plain blobs can coexist in one store).
        metrics: registry for container I/O histograms/counters (defaults
            to the process registry).
    """

    def __init__(
        self,
        backend: StorageBackend,
        capacity: int = CONTAINER_SIZE,
        stats: Optional[IOStats] = None,
        compress: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
        prefix: str = "",
    ) -> None:
        super().__init__(capacity, stats)
        self.backend = backend
        self.prefix = prefix
        self.compress = compress
        self.metrics = metrics if metrics is not None else get_registry()
        self.backend.sweep_tmp(prefix.rstrip("/"))
        existing = self.container_ids()
        if existing:
            self._next_id = max(existing) + 1

    def _name(self, container_id: int) -> str:
        return f"{self.prefix}container-{container_id:08d}.hdsc"

    def write(self, container: Container) -> None:
        name = self._name(container.container_id)
        if self.backend.exists(name):
            raise StorageError(f"container {container.container_id} already stored")
        container.seal()
        started = time.perf_counter()
        blob = pack_container(container)
        if self.compress:
            blob = _COMPRESSED_MAGIC + zlib.compress(blob, level=1)
        self.backend.put(name, blob)
        self.stats.note_container_write(container.used)
        self.metrics.observe("store.container_write_seconds", time.perf_counter() - started)
        self.metrics.inc("store.container_write_bytes", len(blob))

    def read(self, container_id: int) -> Container:
        started = time.perf_counter()
        container = self._load(container_id)
        self.stats.note_container_read(container.used)
        self.metrics.observe("store.container_read_seconds", time.perf_counter() - started)
        self.metrics.inc("store.container_read_bytes", container.used)
        return container

    def peek(self, container_id: int) -> Container:
        return self._load(container_id)

    def _load(self, container_id: int) -> Container:
        name = self._name(container_id)
        try:
            blob = self.backend.get(name)
        except ObjectMissingError:
            raise UnknownContainerError(f"no container {container_id}") from None
        try:
            if blob[:4] == _COMPRESSED_MAGIC:
                blob = zlib.decompress(blob[4:])
            container = unpack_container(blob, expected_id=container_id)
        except (StorageError, struct.error, zlib.error) as exc:
            raise StorageError(f"corrupt container object {name}: {exc}") from exc
        container.seal()
        return container

    def delete(self, container_id: int) -> None:
        try:
            self.backend.delete(self._name(container_id))
        except ObjectMissingError:
            raise UnknownContainerError(f"no container {container_id}") from None

    def __contains__(self, container_id: int) -> bool:
        return self.backend.exists(self._name(container_id))

    def container_ids(self) -> List[int]:
        ids = []
        start = len(self.prefix)
        for name in self.backend.list(self.prefix):
            short = name[start:]
            if short.startswith("container-") and short.endswith(".hdsc"):
                stem = short[len("container-") : -len(".hdsc")]
                # Tolerate foreign names ("container-backup.hdsc", editor
                # copies): a store open must never crash on a stray name.
                if stem.isdigit():
                    ids.append(int(stem))
        return sorted(ids)

    # ------------------------------------------------------------------
    # Ranged partial reads (object store / SQLite restore path)
    # ------------------------------------------------------------------
    def read_chunks(self, container_id: int, fingerprints: List[bytes]) -> Optional[Dict[bytes, "object"]]:
        """Fetch just the named chunks via ranged reads, or ``None``.

        Returns a fingerprint → :class:`~repro.chunking.stream.Chunk`
        mapping when the backend prefers ranged reads and the blob is not
        compressed; ``None`` means "use :meth:`read`" (whole-blob path).
        Bills exactly one whole-container read either way, so
        :class:`IOStats` parity with the full-read path holds.
        """
        from ..chunking.stream import Chunk

        if not getattr(self.backend, "prefers_ranged_reads", False):
            return None
        name = self._name(container_id)
        started = time.perf_counter()
        try:
            header = self.backend.get_range(name, 0, _HEADER.size)
        except ObjectMissingError:
            raise UnknownContainerError(f"no container {container_id}") from None
        if len(header) < _HEADER.size or header[:4] == _COMPRESSED_MAGIC:
            return None  # compressed (or tiny/odd) blob: whole-read path
        magic, cid, count, _capacity = _HEADER.unpack(header)
        if magic != _MAGIC or cid != container_id:
            raise StorageError(f"corrupt container object {name}: bad header")
        table = self.backend.get_range(name, _HEADER.size, count * _ENTRY.size)
        if len(table) != count * _ENTRY.size:
            raise StorageError(f"corrupt container object {name}: short entry table")
        metas = [_ENTRY.unpack_from(table, i * _ENTRY.size) for i in range(count)]
        # Payload is packed in offset order over has_data entries only.
        payload_base = _HEADER.size + count * _ENTRY.size
        located: Dict[bytes, Optional[tuple]] = {}
        sizes: Dict[bytes, int] = {}
        total_logical = 0
        cursor = 0
        for fp, chunk_offset, size, has_data in sorted(metas, key=lambda m: m[1]):
            total_logical += size
            sizes[fp] = size
            if has_data:
                located[fp] = (payload_base + cursor, size)
                cursor += size
            else:
                located[fp] = None  # metadata-only chunk
        chunks: Dict[bytes, Chunk] = {}
        wanted = []
        for fp in fingerprints:
            if fp not in sizes:
                raise UnknownChunkError(
                    f"container {container_id} does not hold {fp.hex()[:8]}"
                )
            span = located[fp]
            if span is None:
                chunks[fp] = Chunk(fp, sizes[fp], None)
            else:
                wanted.append((span[0], span[1], fp))
        wanted.sort()
        spans: List[List[object]] = []  # [start, end, [(offset, size, fp), ...]]
        for offset, size, fp in wanted:
            if spans and offset <= spans[-1][1] + _COALESCE_GAP:
                spans[-1][1] = max(spans[-1][1], offset + size)
                spans[-1][2].append((offset, size, fp))
            else:
                spans.append([offset, offset + size, [(offset, size, fp)]])
        for start, end, members in spans:
            blob = self.backend.get_range(name, start, end - start)
            if len(blob) != end - start:
                raise StorageError(f"corrupt container object {name}: short ranged read")
            for offset, size, fp in members:
                chunks[fp] = Chunk(fp, size, bytes(blob[offset - start : offset - start + size]))
        # Whole-container billing regardless of how few bytes moved: the
        # paper's cost model charges per container touched, and parity
        # with the full-read path keeps backends comparable.
        self.stats.note_container_read(total_logical)
        self.metrics.observe("store.container_read_seconds", time.perf_counter() - started)
        self.metrics.inc("store.container_read_bytes", total_logical)
        return chunks


class FileContainerStore(BackendContainerStore):
    """One file per container under ``root`` (used by the CLI and examples).

    The historical store, now one :class:`BackendContainerStore` over a
    ``file://`` backend — same files, same names, same billing.  Local
    files do not benefit from ranged reads (one syscall either way), so
    restores always take the whole-container read path here.
    """

    def __init__(
        self,
        root: str,
        capacity: int = CONTAINER_SIZE,
        stats: Optional[IOStats] = None,
        compress: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.root = root
        super().__init__(
            wrap_backend(FileBackend(root)),
            capacity=capacity,
            stats=stats,
            compress=compress,
            metrics=metrics,
        )
