"""Container stores: where sealed containers live, with read accounting.

Two backends share one interface:

* :class:`MemoryContainerStore` — keeps containers as Python objects; the
  default for simulation and benchmarks (every read still bills
  :class:`~repro.storage.io_model.IOStats`, which is what the paper's
  metrics are computed from).
* :class:`FileContainerStore` — serialises each container to one file under
  a directory, for the real byte-level backup examples and the CLI.

Container IDs are allocated by the store, strictly increasing from 1.
ID ``0`` and negative IDs never name containers — HiDeStore's recipes use
them as "in active containers" / "see recipe R_n" markers.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional

from ..errors import StorageError, UnknownContainerError
from ..observability import MetricsRegistry, get_registry
from ..units import CONTAINER_SIZE, FINGERPRINT_SIZE
from .container import Container
from .io_model import IOStats


class ContainerStore(ABC):
    """Abstract sealed-container repository with I/O accounting."""

    def __init__(self, capacity: int = CONTAINER_SIZE, stats: Optional[IOStats] = None) -> None:
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._next_id = 1

    # ------------------------------------------------------------------
    def allocate(self) -> Container:
        """Create a fresh, open container with the next global ID."""
        container = Container(self._next_id, self.capacity)
        self._next_id += 1
        return container

    @property
    def next_id(self) -> int:
        """The ID the next :meth:`allocate` call will hand out."""
        return self._next_id

    def reserve_ids(self, upto: int) -> None:
        """Ensure future allocations start above ``upto`` (checkpoint reload)."""
        if upto >= self._next_id:
            self._next_id = upto + 1

    # ------------------------------------------------------------------
    @abstractmethod
    def write(self, container: Container) -> None:
        """Seal and persist a container (bills one container write)."""

    @abstractmethod
    def read(self, container_id: int) -> Container:
        """Fetch a container by ID (bills one container read)."""

    @abstractmethod
    def delete(self, container_id: int) -> None:
        """Remove a container (expired-version reclamation)."""

    @abstractmethod
    def __contains__(self, container_id: int) -> bool: ...

    @abstractmethod
    def container_ids(self) -> List[int]: ...

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.container_ids())

    def stored_bytes(self) -> int:
        """Total live payload bytes across all stored containers (unbilled)."""
        return sum(self.peek(cid).used for cid in self.container_ids())

    def peek(self, container_id: int) -> Container:
        """Fetch a container *without* billing a read (metrics/test use only)."""
        raise NotImplementedError

    def iter_containers(self) -> Iterator[Container]:
        """Iterate containers without billing reads (metrics/test use only)."""
        for cid in self.container_ids():
            yield self.peek(cid)


class MemoryContainerStore(ContainerStore):
    """In-memory store: the simulation substrate used by all benchmarks."""

    def __init__(self, capacity: int = CONTAINER_SIZE, stats: Optional[IOStats] = None) -> None:
        super().__init__(capacity, stats)
        self._containers: Dict[int, Container] = {}

    def write(self, container: Container) -> None:
        if container.container_id in self._containers:
            raise StorageError(f"container {container.container_id} already stored")
        container.seal()
        self._containers[container.container_id] = container
        self.stats.note_container_write(container.used)

    def read(self, container_id: int) -> Container:
        try:
            container = self._containers[container_id]
        except KeyError:
            raise UnknownContainerError(f"no container {container_id}") from None
        self.stats.note_container_read(container.used)
        return container

    def peek(self, container_id: int) -> Container:
        try:
            return self._containers[container_id]
        except KeyError:
            raise UnknownContainerError(f"no container {container_id}") from None

    def delete(self, container_id: int) -> None:
        if self._containers.pop(container_id, None) is None:
            raise UnknownContainerError(f"no container {container_id}")

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._containers

    def container_ids(self) -> List[int]:
        return sorted(self._containers)


_MAGIC = b"HDSC"
_HEADER = struct.Struct("<4sIIQ")  # magic, container_id, chunk_count, capacity
_ENTRY = struct.Struct(f"<{FINGERPRINT_SIZE}sIIB")  # fp, offset, size, has_data


def pack_container(container: Container) -> bytes:
    """Serialise a container (metadata + payload region) to bytes."""
    entries = []
    payload = bytearray()
    for fp, slot in container.items():
        has_data = 1 if slot.data is not None else 0
        entries.append(_ENTRY.pack(fp, slot.offset, slot.size, has_data))
        if slot.data is not None:
            payload.extend(slot.data)
    return (
        _HEADER.pack(_MAGIC, container.container_id, container.chunk_count, container.capacity)
        + b"".join(entries)
        + bytes(payload)
    )


def unpack_container(blob: bytes, expected_id: Optional[int] = None) -> Container:
    """Parse :func:`pack_container` output back into an (unsealed) container.

    Chunks are re-appended in offset order, so holes left by removals are
    compacted away on load; the logical contents are identical.
    """
    from ..chunking.stream import Chunk

    magic, cid, count, capacity = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC or (expected_id is not None and cid != expected_id):
        raise StorageError("corrupt container blob")
    container = Container(cid, capacity)
    offset = _HEADER.size
    metas = []
    for _ in range(count):
        fp, chunk_offset, size, has_data = _ENTRY.unpack_from(blob, offset)
        metas.append((fp, chunk_offset, size, has_data))
        offset += _ENTRY.size
    payload_base = offset
    cursor = 0
    for fp, chunk_offset, size, has_data in sorted(metas, key=lambda m: m[1]):
        data = None
        if has_data:
            data = blob[payload_base + cursor : payload_base + cursor + size]
            cursor += size
        container.add(Chunk(fp, size, data))
    return container


_COMPRESSED_MAGIC = b"HDSZ"


class FileContainerStore(ContainerStore):
    """One file per container under ``root`` (used by the CLI and examples).

    Layout per file: header, metadata entries (the container's hash table),
    then the payload region.  Metadata-only chunks (simulated streams)
    serialise with a zero payload flag so round-trips preserve ``data=None``.

    Args:
        compress: zlib-compress container files on disk (transparent on
            read; compressed and plain files can coexist in one store).
        metrics: registry for container I/O histograms/counters (defaults
            to the process registry).
    """

    def __init__(
        self,
        root: str,
        capacity: int = CONTAINER_SIZE,
        stats: Optional[IOStats] = None,
        compress: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        super().__init__(capacity, stats)
        self.root = root
        self.compress = compress
        self.metrics = metrics if metrics is not None else get_registry()
        os.makedirs(root, exist_ok=True)
        self._sweep_tmp_files()
        existing = self.container_ids()
        if existing:
            self._next_id = max(existing) + 1

    def _sweep_tmp_files(self) -> None:
        """Remove orphaned ``*.tmp`` files left behind by a crashed writer.

        Writes go through ``tmp`` + :func:`os.replace`, so a ``.tmp`` file
        can only exist if a previous process died mid-write; its container
        was never visible and is safe to discard.
        """
        for name in os.listdir(self.root):
            if name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(self.root, name))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def _path(self, container_id: int) -> str:
        return os.path.join(self.root, f"container-{container_id:08d}.hdsc")

    def write(self, container: Container) -> None:
        path = self._path(container.container_id)
        if os.path.exists(path):
            raise StorageError(f"container {container.container_id} already stored")
        container.seal()
        started = time.perf_counter()
        blob = pack_container(container)
        if self.compress:
            blob = _COMPRESSED_MAGIC + zlib.compress(blob, level=1)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        self.stats.note_container_write(container.used)
        self.metrics.observe("store.container_write_seconds", time.perf_counter() - started)
        self.metrics.inc("store.container_write_bytes", len(blob))

    def read(self, container_id: int) -> Container:
        started = time.perf_counter()
        container = self._load(container_id)
        self.stats.note_container_read(container.used)
        self.metrics.observe("store.container_read_seconds", time.perf_counter() - started)
        self.metrics.inc("store.container_read_bytes", container.used)
        return container

    def peek(self, container_id: int) -> Container:
        return self._load(container_id)

    def _load(self, container_id: int) -> Container:
        path = self._path(container_id)
        if not os.path.exists(path):
            raise UnknownContainerError(f"no container {container_id}")
        with open(path, "rb") as handle:
            blob = handle.read()
        try:
            if blob[:4] == _COMPRESSED_MAGIC:
                blob = zlib.decompress(blob[4:])
            container = unpack_container(blob, expected_id=container_id)
        except (StorageError, struct.error, zlib.error) as exc:
            raise StorageError(f"corrupt container file {path}: {exc}") from exc
        container.seal()
        return container

    def delete(self, container_id: int) -> None:
        path = self._path(container_id)
        if not os.path.exists(path):
            raise UnknownContainerError(f"no container {container_id}")
        os.remove(path)

    def __contains__(self, container_id: int) -> bool:
        return os.path.exists(self._path(container_id))

    def container_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self.root):
            if name.startswith("container-") and name.endswith(".hdsc"):
                stem = name[len("container-") : -len(".hdsc")]
                # Tolerate foreign files ("container-backup.hdsc", editor
                # copies): a store open must never crash on a stray name.
                if stem.isdigit():
                    ids.append(int(stem))
        return sorted(ids)
