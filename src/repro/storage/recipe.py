"""Recipes: per-version chunk lists used to restore the original data.

Each recipe entry is 28 bytes, exactly as the paper specifies (§2.1): a
20-byte fingerprint, a 4-byte container ID and a 4-byte size.  Traditional
systems only ever store positive container IDs.  HiDeStore overloads the CID
field (§4.3 / §4.4):

* ``cid > 0`` — the chunk lives in archival container ``cid``;
* ``cid == ACTIVE_CID (0)`` — the chunk lives in the active containers;
* ``cid < 0`` — the chunk's location is recorded in recipe ``R_{-cid}``
  (follow the recipe chain).
"""

from __future__ import annotations

import os
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import RecipeError
from ..units import FINGERPRINT_SIZE, RECIPE_ENTRY_SIZE
from .io_model import IOStats

#: CID marker: chunk currently lives in the active containers.
ACTIVE_CID = 0


@dataclass
class RecipeEntry:
    """One chunk reference inside a recipe (mutable: HiDeStore updates CIDs)."""

    fingerprint: bytes
    size: int
    cid: int = ACTIVE_CID

    @property
    def is_active(self) -> bool:
        return self.cid == ACTIVE_CID

    @property
    def is_archival(self) -> bool:
        return self.cid > 0

    @property
    def is_chained(self) -> bool:
        return self.cid < 0

    @property
    def chained_version(self) -> int:
        """For ``cid < 0`` entries: the recipe version to consult next."""
        if self.cid >= 0:
            raise RecipeError(f"entry cid={self.cid} is not a chain reference")
        return -self.cid


class Recipe:
    """The ordered chunk list of one backup version."""

    def __init__(self, version_id: int, tag: str = "", entries: Optional[List[RecipeEntry]] = None) -> None:
        if version_id <= 0:
            raise RecipeError("version IDs are 1-based positive integers")
        self.version_id = version_id
        self.tag = tag or f"v{version_id}"
        self.entries: List[RecipeEntry] = entries if entries is not None else []

    def append(self, fingerprint: bytes, size: int, cid: int = ACTIVE_CID) -> RecipeEntry:
        entry = RecipeEntry(fingerprint, size, cid)
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RecipeEntry]:
        return iter(self.entries)

    @property
    def logical_size(self) -> int:
        """Pre-dedup byte size of the version this recipe restores."""
        return sum(e.size for e in self.entries)

    @property
    def byte_size(self) -> int:
        """Serialized recipe size (28 bytes per entry, as in the paper)."""
        return len(self.entries) * RECIPE_ENTRY_SIZE

    def referenced_containers(self) -> List[int]:
        """Distinct positive CIDs, in first-reference order."""
        seen: Dict[int, None] = {}
        for entry in self.entries:
            if entry.cid > 0 and entry.cid not in seen:
                seen[entry.cid] = None
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Recipe(version={self.version_id}, tag={self.tag!r}, entries={len(self.entries)})"


_ENTRY = struct.Struct(f"<{FINGERPRINT_SIZE}siI")
assert _ENTRY.size == RECIPE_ENTRY_SIZE
_HEADER = struct.Struct("<4sII")  # magic, version_id, entry count
_MAGIC = b"HDSR"


def pack_recipe(recipe: Recipe) -> bytes:
    """Serialise a recipe to its binary on-disk form."""
    parts = [_HEADER.pack(_MAGIC, recipe.version_id, len(recipe.entries))]
    tag = recipe.tag.encode("utf-8")
    parts.append(struct.pack("<H", len(tag)))
    parts.append(tag)
    for entry in recipe.entries:
        parts.append(_ENTRY.pack(entry.fingerprint, entry.cid, entry.size))
    return b"".join(parts)


def unpack_recipe(blob: bytes) -> Recipe:
    """Parse the binary form produced by :func:`pack_recipe`."""
    try:
        magic, version_id, count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise RecipeError("bad recipe magic")
        offset = _HEADER.size
        (tag_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        tag = blob[offset : offset + tag_len].decode("utf-8")
        offset += tag_len
        entries = []
        for _ in range(count):
            fp, cid, size = _ENTRY.unpack_from(blob, offset)
            entries.append(RecipeEntry(fp, size, cid))
            offset += _ENTRY.size
    except (struct.error, UnicodeDecodeError) as exc:
        raise RecipeError(f"corrupt recipe blob: {exc}") from exc
    return Recipe(version_id, tag, entries)


class RecipeStore(ABC):
    """Versioned recipe repository with read/write accounting."""

    def __init__(self, stats: Optional[IOStats] = None) -> None:
        self.stats = stats if stats is not None else IOStats()

    @abstractmethod
    def write(self, recipe: Recipe) -> None:
        """Persist (or overwrite — HiDeStore updates chains) a recipe."""

    @abstractmethod
    def read(self, version_id: int) -> Recipe:
        """Load a recipe (bills one recipe read)."""

    @abstractmethod
    def delete(self, version_id: int) -> None: ...

    @abstractmethod
    def __contains__(self, version_id: int) -> bool: ...

    @abstractmethod
    def version_ids(self) -> List[int]: ...

    def latest_version(self) -> Optional[int]:
        ids = self.version_ids()
        return max(ids) if ids else None

    def total_bytes(self) -> int:
        """Aggregate serialized size of all recipes (unbilled)."""
        return sum(self.peek(v).byte_size for v in self.version_ids())

    def peek(self, version_id: int) -> Recipe:
        """Load without billing (metrics/test use)."""
        raise NotImplementedError


class MemoryRecipeStore(RecipeStore):
    """Dict-backed recipe store used by simulations and benchmarks."""

    def __init__(self, stats: Optional[IOStats] = None) -> None:
        super().__init__(stats)
        self._recipes: Dict[int, Recipe] = {}

    def write(self, recipe: Recipe) -> None:
        self._recipes[recipe.version_id] = recipe
        self.stats.note_recipe_write(recipe.byte_size)

    def read(self, version_id: int) -> Recipe:
        recipe = self._recipes.get(version_id)
        if recipe is None:
            raise RecipeError(f"no recipe for version {version_id}")
        self.stats.note_recipe_read(recipe.byte_size)
        return recipe

    def peek(self, version_id: int) -> Recipe:
        recipe = self._recipes.get(version_id)
        if recipe is None:
            raise RecipeError(f"no recipe for version {version_id}")
        return recipe

    def delete(self, version_id: int) -> None:
        if self._recipes.pop(version_id, None) is None:
            raise RecipeError(f"no recipe for version {version_id}")

    def __contains__(self, version_id: int) -> bool:
        return version_id in self._recipes

    def version_ids(self) -> List[int]:
        return sorted(self._recipes)


class BackendRecipeStore(RecipeStore):
    """Recipes as named mutable blobs on a :class:`StorageBackend`.

    Recipes are *metadata* (HiDeStore rewrites them when updating the
    §4.3 chain), so writes go through the backend's mutable
    ``put_meta`` surface rather than the immutable ``put``.
    """

    def __init__(self, backend, stats: Optional[IOStats] = None, prefix: str = "") -> None:
        super().__init__(stats)
        self.backend = backend
        self.prefix = prefix

    def _name(self, version_id: int) -> str:
        return f"{self.prefix}recipe-{version_id:08d}.hdsr"

    def write(self, recipe: Recipe) -> None:
        blob = pack_recipe(recipe)
        self.backend.put_meta(self._name(recipe.version_id), blob)
        self.stats.note_recipe_write(len(blob))

    def read(self, version_id: int) -> Recipe:
        recipe = self.peek(version_id)
        self.stats.note_recipe_read(recipe.byte_size)
        return recipe

    def peek(self, version_id: int) -> Recipe:
        from ..errors import ObjectMissingError

        try:
            blob = self.backend.get(self._name(version_id))
        except ObjectMissingError:
            raise RecipeError(f"no recipe for version {version_id}") from None
        return unpack_recipe(blob)

    def delete(self, version_id: int) -> None:
        from ..errors import ObjectMissingError

        try:
            self.backend.delete(self._name(version_id))
        except ObjectMissingError:
            raise RecipeError(f"no recipe for version {version_id}") from None

    def __contains__(self, version_id: int) -> bool:
        return self.backend.exists(self._name(version_id))

    def version_ids(self) -> List[int]:
        ids = []
        start = len(self.prefix)
        for name in self.backend.list(self.prefix):
            short = name[start:]
            if short.startswith("recipe-") and short.endswith(".hdsr"):
                stem = short[len("recipe-") : -len(".hdsr")]
                if stem.isdigit():
                    ids.append(int(stem))
        return sorted(ids)


class FileRecipeStore(RecipeStore):
    """One binary file per recipe under ``root`` (CLI / examples backend)."""

    def __init__(self, root: str, stats: Optional[IOStats] = None) -> None:
        super().__init__(stats)
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, version_id: int) -> str:
        return os.path.join(self.root, f"recipe-{version_id:08d}.hdsr")

    def write(self, recipe: Recipe) -> None:
        blob = pack_recipe(recipe)
        tmp = self._path(recipe.version_id) + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, self._path(recipe.version_id))
        self.stats.note_recipe_write(len(blob))

    def read(self, version_id: int) -> Recipe:
        recipe = self.peek(version_id)
        self.stats.note_recipe_read(recipe.byte_size)
        return recipe

    def peek(self, version_id: int) -> Recipe:
        path = self._path(version_id)
        if not os.path.exists(path):
            raise RecipeError(f"no recipe for version {version_id}")
        with open(path, "rb") as handle:
            return unpack_recipe(handle.read())

    def delete(self, version_id: int) -> None:
        path = self._path(version_id)
        if not os.path.exists(path):
            raise RecipeError(f"no recipe for version {version_id}")
        os.remove(path)

    def __contains__(self, version_id: int) -> bool:
        return os.path.exists(self._path(version_id))

    def version_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self.root):
            if name.startswith("recipe-") and name.endswith(".hdsr"):
                ids.append(int(name[len("recipe-") : -len(".hdsr")]))
        return sorted(ids)
