"""I/O accounting and an analytic disk cost model.

The paper deliberately reports *speed factor* (MB restored per container
read) instead of wall-clock throughput, because container-read counts are
hardware-independent.  :class:`IOStats` is the ledger every store updates;
:class:`DiskModel` converts read counts into estimated seconds for readers
who want a feel for absolute numbers (HDD-ish defaults).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..units import MiB


@dataclass
class IOStats:
    """Mutable ledger of simulated device traffic.

    Increments are lock-protected: the pipelined restore engine bills
    container reads from multiple worker threads, and an unguarded
    ``+= 1`` is a read-modify-write that can drop updates.
    """

    container_reads: int = 0
    container_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    recipe_reads: int = 0
    recipe_writes: int = 0
    index_lookups: int = 0  # on-disk full-index probes (Fig. 9 metric)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note_container_read(self, nbytes: int) -> None:
        with self._lock:
            self.container_reads += 1
            self.bytes_read += nbytes

    def note_container_write(self, nbytes: int) -> None:
        with self._lock:
            self.container_writes += 1
            self.bytes_written += nbytes

    def note_recipe_read(self, nbytes: int = 0) -> None:
        with self._lock:
            self.recipe_reads += 1
            self.bytes_read += nbytes

    def note_recipe_write(self, nbytes: int = 0) -> None:
        with self._lock:
            self.recipe_writes += 1
            self.bytes_written += nbytes

    def note_index_lookup(self, count: int = 1) -> None:
        with self._lock:
            self.index_lookups += count

    def snapshot(self) -> "IOStats":
        """Copy the current counters (e.g. before a restore, to diff after)."""
        with self._lock:
            return IOStats(
                container_reads=self.container_reads,
                container_writes=self.container_writes,
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
                recipe_reads=self.recipe_reads,
                recipe_writes=self.recipe_writes,
                index_lookups=self.index_lookups,
            )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            container_reads=self.container_reads - earlier.container_reads,
            container_writes=self.container_writes - earlier.container_writes,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            recipe_reads=self.recipe_reads - earlier.recipe_reads,
            recipe_writes=self.recipe_writes - earlier.recipe_writes,
            index_lookups=self.index_lookups - earlier.index_lookups,
        )

    def reset(self) -> None:
        self.container_reads = 0
        self.container_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.recipe_reads = 0
        self.recipe_writes = 0
        self.index_lookups = 0


@dataclass(frozen=True)
class DiskModel:
    """Analytic HDD model translating I/O counts into estimated seconds.

    Defaults approximate a 7.2k-RPM SATA drive: 8 ms average positioning
    per random access and 150 MiB/s sequential transfer.
    """

    seek_seconds: float = 0.008
    transfer_bytes_per_second: float = 150 * MiB
    index_lookup_seconds: float = 0.008  # one random read per index probe

    def restore_seconds(self, stats: IOStats) -> float:
        """Estimated time for the read traffic recorded in ``stats``."""
        random_accesses = stats.container_reads + stats.recipe_reads
        return (
            random_accesses * self.seek_seconds
            + stats.bytes_read / self.transfer_bytes_per_second
        )

    def dedup_index_seconds(self, stats: IOStats) -> float:
        """Estimated time spent on on-disk fingerprint-index probes."""
        return stats.index_lookups * self.index_lookup_seconds

    def throughput_mb_per_second(self, logical_bytes: int, stats: IOStats) -> float:
        """Logical MB restored per modelled second (0 if no traffic)."""
        seconds = self.restore_seconds(stats)
        if seconds <= 0:
            return 0.0
        return (logical_bytes / MiB) / seconds
