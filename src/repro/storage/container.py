"""Containers: the 4 MiB on-disk unit of chunk storage (paper §2.1, Fig. 6).

A container holds the payloads of many chunks plus a metadata section — the
container ID, used size, and a per-container hash table mapping fingerprints
to (offset, size) of each stored chunk.  Reading any chunk from disk costs a
whole-container read, which is why physical locality dominates restore
performance.

HiDeStore distinguishes *active* containers (mutable: hot chunks are inserted
and cold ones removed, then sparse containers are merged) from *archival*
containers (write-once, like a traditional system's containers).  Both are
the same class here; mutability is a policy of the owning layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ContainerFullError, StorageError, UnknownChunkError
from ..units import CONTAINER_SIZE
from ..chunking.stream import Chunk


@dataclass(frozen=True)
class ChunkSlot:
    """Location and payload of one chunk inside a container."""

    offset: int
    size: int
    data: Optional[bytes] = None


class Container:
    """An append-oriented chunk container with a metadata hash table.

    Args:
        container_id: globally unique positive integer.
        capacity: payload capacity in bytes (4 MiB by default, as in the
            paper; all compared schemes use the same size for fairness).
    """

    __slots__ = ("container_id", "capacity", "_slots", "_used", "_cursor", "sealed")

    def __init__(self, container_id: int, capacity: int = CONTAINER_SIZE) -> None:
        if container_id <= 0:
            raise StorageError(
                f"container IDs must be positive (got {container_id}); "
                "0 and negatives are reserved recipe markers"
            )
        if capacity <= 0:
            raise StorageError("container capacity must be positive")
        self.container_id = container_id
        self.capacity = capacity
        self._slots: Dict[bytes, ChunkSlot] = {}
        self._used = 0  # live payload bytes
        self._cursor = 0  # append offset (never reused without compaction)
        self.sealed = False

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def fits(self, size: int) -> bool:
        """Whether a chunk of ``size`` bytes can be appended right now.

        Freed space from removed chunks does *not* count until
        :meth:`compact` runs — the free space is not contiguous (Fig. 6).
        """
        return self._cursor + size <= self.capacity

    def add(self, chunk: Chunk) -> ChunkSlot:
        """Append a chunk; returns its slot.  Raises if sealed, full or duplicate."""
        if self.sealed:
            raise StorageError(f"container {self.container_id} is sealed")
        if chunk.fingerprint in self._slots:
            raise StorageError(
                f"container {self.container_id} already holds chunk {chunk.short_fp()}"
            )
        if not self.fits(chunk.size):
            raise ContainerFullError(
                f"container {self.container_id}: chunk of {chunk.size} B does not "
                f"fit (cursor {self._cursor}/{self.capacity})"
            )
        slot = ChunkSlot(self._cursor, chunk.size, chunk.data)
        self._slots[chunk.fingerprint] = slot
        self._cursor += chunk.size
        self._used += chunk.size
        return slot

    def remove(self, fingerprint: bytes) -> ChunkSlot:
        """Drop a chunk from the metadata table, leaving a hole in the payload.

        Used when HiDeStore demotes cold chunks out of an active container.
        The hole is reclaimed only by :meth:`compact`.
        """
        try:
            slot = self._slots.pop(fingerprint)
        except KeyError:
            raise UnknownChunkError(
                f"container {self.container_id} does not hold {fingerprint.hex()[:8]}"
            ) from None
        self._used -= slot.size
        return slot

    def compact(self) -> int:
        """Rewrite live chunks contiguously; returns bytes reclaimed."""
        reclaimed = self._cursor - self._used
        offset = 0
        rebuilt: Dict[bytes, ChunkSlot] = {}
        for fp, slot in self._slots.items():
            rebuilt[fp] = ChunkSlot(offset, slot.size, slot.data)
            offset += slot.size
        self._slots = rebuilt
        self._cursor = offset
        return reclaimed

    def seal(self) -> None:
        """Freeze the container (archival state)."""
        self.sealed = True

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._slots

    def get(self, fingerprint: bytes) -> ChunkSlot:
        try:
            return self._slots[fingerprint]
        except KeyError:
            raise UnknownChunkError(
                f"container {self.container_id} does not hold {fingerprint.hex()[:8]}"
            ) from None

    def get_chunk(self, fingerprint: bytes) -> Chunk:
        """Materialise a :class:`Chunk` for a stored fingerprint."""
        slot = self.get(fingerprint)
        return Chunk(fingerprint, slot.size, slot.data)

    def fingerprints(self) -> List[bytes]:
        return list(self._slots.keys())

    def chunks(self) -> Iterator[Chunk]:
        """Iterate live chunks in offset order (the physical layout)."""
        for fp, slot in sorted(self._slots.items(), key=lambda kv: kv[1].offset):
            yield Chunk(fp, slot.size, slot.data)

    def items(self) -> Iterator[Tuple[bytes, ChunkSlot]]:
        return iter(self._slots.items())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def chunk_count(self) -> int:
        return len(self._slots)

    @property
    def used(self) -> int:
        """Live payload bytes (holes excluded)."""
        return self._used

    @property
    def written(self) -> int:
        """Bytes ever appended and not yet compacted away (cursor position)."""
        return self._cursor

    @property
    def utilization(self) -> float:
        """Live bytes over capacity — the paper's sparseness measure (§4.2)."""
        return self._used / self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._slots

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Container(id={self.container_id}, chunks={self.chunk_count}, "
            f"used={self._used}/{self.capacity}, sealed={self.sealed})"
        )
