"""A local S3-style object server for tests, benchmarks and CI smoke jobs.

Implements exactly the dialect :class:`~repro.storage.object_store.
ObjectStoreBackend` speaks — ranged ``GET`` (``206``), conditional ``PUT``
(``If-None-Match: *`` → ``412`` on conflict), ``HEAD``, ``DELETE``,
prefix listing, and a ``?digest=1`` sha256 endpoint.  Objects live in an
in-process dict guarded by one lock; the HTTP layer is a
:class:`ThreadingHTTPServer`, so concurrent ranged GETs from the restore
reader pool are served concurrently (plus an optional per-request
``latency`` to model object-store round-trips — without it a loopback
GET is so cheap that parallelism wins nothing).

Every request is appended to a thread-safe **request log** (method, path,
range header, status, monotonic start/end timestamps) and optionally
mirrored to a JSONL file — CI uses that artifact to prove the restore
path really issued overlapping ranged GETs.

Run standalone via ``hidestore fake-s3 127.0.0.1:9000 --log s3.jsonl``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["FakeS3Server", "RequestRecord", "main"]


@dataclass
class RequestRecord:
    """One served HTTP request, for overlap analysis and CI artifacts."""

    method: str
    path: str
    range_header: Optional[str]
    status: int
    started: float
    finished: float

    def overlaps(self, other: "RequestRecord") -> bool:
        """Whether the two requests were in flight at the same time."""
        return self.started < other.finished and other.started < self.finished

    def to_json(self) -> dict:
        return {
            "method": self.method,
            "path": self.path,
            "range": self.range_header,
            "status": self.status,
            "started": round(self.started, 6),
            "finished": round(self.finished, 6),
        }


@dataclass
class _Store:
    """Shared mutable state behind the handler (one per server)."""

    objects: Dict[str, bytes] = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)
    log: List[RequestRecord] = field(default_factory=list)
    log_lock: threading.Lock = field(default_factory=threading.Lock)
    latency: float = 0.0
    log_path: Optional[str] = None
    log_file: Optional[object] = None


def _parse_range(header: str, size: int) -> Optional[Tuple[int, int]]:
    """``bytes=a-b`` → (start, end_exclusive), or ``None`` when unusable."""
    if not header.startswith("bytes="):
        return None
    spec = header[len("bytes=") :]
    if "," in spec:  # multipart ranges are out of dialect
        return None
    start_text, _, end_text = spec.partition("-")
    try:
        if start_text:
            start = int(start_text)
            end = int(end_text) + 1 if end_text else size
        elif end_text:  # suffix range: last N bytes
            start = max(0, size - int(end_text))
            end = size
        else:
            return None
    except ValueError:
        return None
    if start >= size:
        return (-1, -1)  # signal 416
    return start, min(end, size)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    store: _Store  # injected by FakeS3Server via subclassing

    # -- helpers -------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # silence stderr chatter
        pass

    def _respond(self, status: int, body: bytes = b"", headers: Optional[dict] = None) -> None:
        self.send_response(status)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD" and body:
            self.wfile.write(body)

    def _key(self) -> str:
        return unquote(urlsplit(self.path).path).lstrip("/")

    def _query(self) -> dict:
        return parse_qs(urlsplit(self.path).query, keep_blank_values=True)

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length) if length else b""

    def _record(self, status: int, started: float) -> None:
        record = RequestRecord(
            method=self.command,
            path=self.path,
            range_header=self.headers.get("Range"),
            status=status,
            started=started,
            finished=time.monotonic(),
        )
        store = self.store
        with store.log_lock:
            store.log.append(record)
            if store.log_file is not None:
                store.log_file.write(json.dumps(record.to_json()) + "\n")
                store.log_file.flush()

    def _serve(self) -> None:
        started = time.monotonic()
        store = self.store
        if store.latency:
            time.sleep(store.latency)
        try:
            status = self._dispatch()
        except BrokenPipeError:  # client went away mid-reply
            status = 499
        self._record(status, started)

    # -- dialect -------------------------------------------------------
    def _dispatch(self) -> int:
        store = self.store
        key = self._key()
        if self.command == "PUT":
            body = self._body()
            with store.lock:
                if self.headers.get("If-None-Match") == "*" and key in store.objects:
                    self._respond(412, b"precondition failed: object exists")
                    return 412
                store.objects[key] = body
            self._respond(201)
            return 201
        if self.command == "DELETE":
            with store.lock:
                missing = store.objects.pop(key, None) is None
            if missing:
                self._respond(404, b"no such object")
                return 404
            self._respond(204)
            return 204
        if self.command in ("GET", "HEAD"):
            query = self._query()
            if self.command == "GET" and "prefix" in query:
                # Bucket listing: GET /bucket?prefix=P → keys under the
                # bucket (bucket name stripped), newline-separated.
                prefix = query["prefix"][0]
                bucket_prefix = key.rstrip("/") + "/"
                with store.lock:
                    keys = sorted(
                        name[len(bucket_prefix) :]
                        for name in store.objects
                        if name.startswith(bucket_prefix)
                        and name[len(bucket_prefix) :].startswith(prefix)
                    )
                body = "\n".join(keys).encode("utf-8")
                self._respond(200, body, {"Content-Type": "text/plain"})
                return 200
            with store.lock:
                blob = store.objects.get(key)
            if blob is None:
                self._respond(404, b"no such object")
                return 404
            if "digest" in query:
                body = hashlib.sha256(blob).hexdigest().encode("ascii")
                self._respond(200, body, {"Content-Type": "text/plain"})
                return 200
            range_header = self.headers.get("Range")
            if range_header:
                span = _parse_range(range_header, len(blob))
                if span == (-1, -1):
                    self._respond(416, b"", {"Content-Range": f"bytes */{len(blob)}"})
                    return 416
                if span is not None:
                    start, end = span
                    headers = {
                        "Content-Range": f"bytes {start}-{end - 1}/{len(blob)}",
                        "Accept-Ranges": "bytes",
                    }
                    self._respond(206, blob[start:end], headers)
                    return 206
            self._respond(200, blob, {"Accept-Ranges": "bytes"})
            return 200
        self._respond(405, b"method not allowed")
        return 405

    do_GET = do_HEAD = do_PUT = do_DELETE = _serve


class FakeS3Server:
    """An in-process threaded object server bound to ``host:port``.

    Args:
        host: bind address (default loopback).
        port: TCP port; ``0`` picks a free one (see :attr:`port` after start).
        latency: seconds of artificial delay per request, to model
            object-store round-trip time in benchmarks.
        log_path: optional JSONL file mirroring the request log.

    Usable as a context manager; ``request_log()`` snapshots served
    requests and ``max_concurrent_ranged_gets()`` reports how many ranged
    GETs were ever in flight simultaneously — the number CI asserts on.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        latency: float = 0.0,
        log_path: Optional[str] = None,
    ) -> None:
        self._store = _Store(latency=latency, log_path=log_path)
        handler = type("BoundHandler", (_Handler,), {"store": self._store})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host = host
        self.port = self._server.server_address[1]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "FakeS3Server":
        if self._store.log_path:
            self._store.log_file = open(self._store.log_path, "a", encoding="utf-8")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="fake-s3", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._store.log_file is not None:
            self._store.log_file.close()
            self._store.log_file = None

    def __enter__(self) -> "FakeS3Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- inspection ----------------------------------------------------
    @property
    def latency(self) -> float:
        """Artificial per-request delay in seconds (mutable at runtime)."""
        return self._store.latency

    @latency.setter
    def latency(self, seconds: float) -> None:
        self._store.latency = seconds

    def url(self, bucket: str, prefix: str = "") -> str:
        """The ``s3://`` URL of a bucket (and optional prefix) on this server."""
        base = f"s3://{self.host}:{self.port}/{bucket}"
        return f"{base}/{prefix}" if prefix else base

    def object_count(self) -> int:
        with self._store.lock:
            return len(self._store.objects)

    def request_log(self) -> List[RequestRecord]:
        with self._store.log_lock:
            return list(self._store.log)

    def clear_log(self) -> None:
        with self._store.log_lock:
            self._store.log.clear()

    def ranged_get_records(self) -> List[RequestRecord]:
        return [
            record
            for record in self.request_log()
            if record.method == "GET" and record.range_header and record.status == 206
        ]

    def max_concurrent_ranged_gets(self) -> int:
        """Peak number of ranged GETs in flight at once (overlap count)."""
        events: List[Tuple[float, int]] = []
        for record in self.ranged_get_records():
            events.append((record.started, 1))
            events.append((record.finished, -1))
        peak = live = 0
        for _, delta in sorted(events):
            live += delta
            peak = max(peak, live)
        return peak


def main(argv: Optional[List[str]] = None) -> int:
    """``hidestore fake-s3 HOST:PORT [--latency-ms N] [--log PATH]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="hidestore fake-s3",
        description="Run a local S3-style object server (testing/CI only).",
    )
    parser.add_argument("listen", help="bind address, HOST:PORT (e.g. 127.0.0.1:9000)")
    parser.add_argument(
        "--latency-ms",
        type=float,
        default=0.0,
        help="artificial per-request latency in milliseconds",
    )
    parser.add_argument("--log", default=None, help="append a JSONL request log to PATH")
    args = parser.parse_args(argv)
    host, _, port_text = args.listen.partition(":")
    server = FakeS3Server(
        host=host or "127.0.0.1",
        port=int(port_text or 0),
        latency=args.latency_ms / 1000.0,
        log_path=args.log,
    )
    server.start()
    print(f"fake-s3 listening on {server.host}:{server.port}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
