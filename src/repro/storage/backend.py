"""URL-addressed storage backends: where repository bytes physically live.

The paper's middleware separates logical dedup state from the physical
placement of sealed containers (§4.2: archival containers are immutable
once sealed) — so the *where* of container bytes is swappable without
touching restore semantics.  This module is that seam: a small, explicit
:class:`StorageBackend` protocol over **named immutable blobs** plus a
tiny **mutable-metadata surface**, selected by URL:

* ``file://PATH`` (or a bare path) — one file per object under a
  directory; the historical layout, byte-identical to what the CLI has
  always written.
* ``sqlite://PATH`` — all objects in one SQLite database file; a
  metadata + small-object backend (repository metadata, recipes,
  manifests, checkpoints, or whole small repositories in a single file).
* ``s3://HOST:PORT/BUCKET[/PREFIX]`` — an S3-style object store speaking
  a minimal HTTP dialect (ranged ``GET``, conditional ``PUT``); see
  :mod:`repro.storage.object_store` and the local
  :class:`~repro.storage.fake_s3.FakeS3Server`.

Protocol vocabulary (the verbs every backend must honour):

* ``put(name, blob)`` — land an **immutable** object atomically; a second
  ``put`` of the same name raises (sealed containers never change);
* ``put_meta(name, blob)`` — land a **mutable** object atomically
  (recipes, manifests, checkpoints — the §4.3 chain rewrites these);
* ``get(name)`` / ``get_range(name, offset, length)`` — whole or ranged
  reads (ranged reads feed the prefetching restore pool with parallel
  ranged GETs on object stores);
* ``exists`` / ``size`` / ``digest`` — metadata without shipping bytes;
* ``delete`` / ``list(prefix)`` / ``rename`` — expiry, discovery, and
  staged-object commits;
* ``sweep_tmp(prefix)`` — crash-litter hygiene (a no-op on transactional
  backends).

Repository *specs* build on backend URLs: :func:`parse_repo_spec` accepts
a bare directory (implicit ``file://``) or any backend URL, plus an
optional ``?archive=URL`` query naming a second backend for the cold
tier — sealed archival containers land there while the hot mutable
metadata stays on the primary backend.  Immutability is what makes the
mixing safe: a sealed container reads identically from any tier.

Object names are relative, ``/``-separated, and validated — they arrive
over the wire (replication frames) and are joined under roots.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
from typing import List, Optional, Protocol, runtime_checkable
from urllib.parse import parse_qs, quote, unquote

from ..errors import ObjectMissingError, StorageError

__all__ = [
    "StorageBackend",
    "FileBackend",
    "SQLiteBackend",
    "RepoLocation",
    "open_backend",
    "parse_repo_spec",
    "validate_object_name",
    "SCHEMES",
    "install_backend_wrapper",
    "clear_backend_wrapper",
    "wrap_backend",
]


def validate_object_name(name: str) -> str:
    """Vet one backend object name; returns it.

    Names are relative ``/``-separated paths ("containers/container-
    00000001.hdsc", "checkpoint.json").  They are joined under backend
    roots and embedded in URLs, so traversal components, absolute paths
    and control characters are rejected.
    """
    if not isinstance(name, str) or not name:
        raise StorageError("empty storage object name")
    if any(ord(ch) < 32 or ord(ch) == 127 for ch in name):
        raise StorageError(f"control character in object name {name!r}")
    if name.startswith("/") or "\\" in name or (len(name) >= 2 and name[1] == ":"):
        raise StorageError(f"absolute object name {name!r}")
    for part in name.split("/"):
        if part in ("", ".", ".."):
            raise StorageError(f"unsafe component in object name {name!r}")
    return name


# ----------------------------------------------------------------------
# Backend wrapper hook (fault injection, tracing)
# ----------------------------------------------------------------------
#: Process-global backend wrapper: every backend construction that goes
#: through this module (``open_backend``, ``RepoLocation.open_primary`` /
#: ``open_archive``, the engine file stores) passes the fresh backend
#: through the installed callable.  The chaos harness uses this to slide
#: a :class:`~repro.chaos.faults.FaultInjectingBackend` under *every*
#: repository in the process — including the plain-directory repos the
#: daemon serves — without the owning layers knowing.
_BACKEND_WRAPPER = None
_WRAPPER_LOCK = threading.Lock()


def install_backend_wrapper(wrapper) -> None:
    """Install a process-global ``backend -> backend`` wrapper.

    Only one wrapper may be installed at a time (chaos runs own the
    process); installing over an existing one raises so two harnesses
    cannot silently stack.
    """
    global _BACKEND_WRAPPER
    with _WRAPPER_LOCK:
        if _BACKEND_WRAPPER is not None and wrapper is not None:
            raise StorageError("a backend wrapper is already installed")
        _BACKEND_WRAPPER = wrapper


def clear_backend_wrapper() -> None:
    """Remove the installed wrapper (no-op when none is installed)."""
    global _BACKEND_WRAPPER
    with _WRAPPER_LOCK:
        _BACKEND_WRAPPER = None


def wrap_backend(backend: "StorageBackend") -> "StorageBackend":
    """Pass a freshly constructed backend through the installed wrapper."""
    wrapper = _BACKEND_WRAPPER
    return backend if wrapper is None else wrapper(backend)


@runtime_checkable
class StorageBackend(Protocol):
    """Named-blob storage behind a URL (see module docstring).

    Implementations must be safe for concurrent reads from multiple
    threads (the prefetching restore pool issues parallel ``get`` /
    ``get_range`` calls); writes may be externally serialised by the
    owning layer.  ``prefers_ranged_reads`` advertises that partial
    object reads are genuinely cheaper than whole-object reads (object
    stores, SQLite blobs) — the container store uses it to decide whether
    to fetch only the chunk ranges a restore plan needs.
    """

    #: Canonical URL this backend was opened from.
    url: str
    #: Whether ranged reads beat whole-object reads on this backend.
    prefers_ranged_reads: bool

    def put(self, name: str, blob: bytes) -> None:
        """Store an immutable object atomically; raise if it exists."""
        ...

    def put_meta(self, name: str, blob: bytes) -> None:
        """Store (or atomically replace) a mutable metadata object."""
        ...

    def get(self, name: str) -> bytes: ...

    def get_range(self, name: str, offset: int, length: int) -> bytes: ...

    def exists(self, name: str) -> bool: ...

    def size(self, name: str) -> int: ...

    def digest(self, name: str) -> str:
        """Hex sha256 of the object's bytes."""
        ...

    def delete(self, name: str) -> None: ...

    def list(self, prefix: str = "") -> List[str]: ...

    def rename(self, name: str, new_name: str) -> None:
        """Move an object over ``new_name`` (replacing it) in one step."""
        ...

    def sweep_tmp(self, prefix: str = "") -> None:
        """Remove crash litter below ``prefix`` (no-op if transactional)."""
        ...

    def close(self) -> None: ...


# ----------------------------------------------------------------------
# file:// — one file per object (the historical layout)
# ----------------------------------------------------------------------
class FileBackend:
    """Objects as files under ``root``; writes are ``*.tmp`` + rename.

    This is the layout the ``hidestore`` CLI has always produced: object
    name ``containers/container-00000001.hdsc`` is exactly that path under
    the repository directory, so a ``file://`` repository is byte-identical
    to one written before backends existed.
    """

    prefers_ranged_reads = False  # local reads are one syscall either way

    def __init__(self, root: str) -> None:
        self.root = root
        self.url = "file://" + os.path.abspath(root)
        os.makedirs(root, exist_ok=True)

    # -- helpers -------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self.root, *validate_object_name(name).split("/"))

    def _write(self, name: str, blob: bytes) -> None:
        path = self._path(name)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    # -- protocol ------------------------------------------------------
    def put(self, name: str, blob: bytes) -> None:
        if os.path.exists(self._path(name)):
            raise StorageError(f"immutable object {name!r} already stored")
        self._write(name, blob)

    def put_meta(self, name: str, blob: bytes) -> None:
        self._write(name, blob)

    def get(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise ObjectMissingError(f"no object {name!r} in {self.url}") from None

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except FileNotFoundError:
            raise ObjectMissingError(f"no object {name!r} in {self.url}") from None

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except OSError:
            raise ObjectMissingError(f"no object {name!r} in {self.url}") from None

    def digest(self, name: str) -> str:
        sha = hashlib.sha256()
        try:
            with open(self._path(name), "rb") as handle:
                while True:
                    block = handle.read(1 << 20)
                    if not block:
                        break
                    sha.update(block)
        except FileNotFoundError:
            raise ObjectMissingError(f"no object {name!r} in {self.url}") from None
        return sha.hexdigest()

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            raise ObjectMissingError(f"no object {name!r} in {self.url}") from None

    def list(self, prefix: str = "") -> List[str]:
        out: List[str] = []
        base = self.root
        if not os.path.isdir(base):
            return out
        for dirpath, _dirs, files in os.walk(base):
            rel_dir = os.path.relpath(dirpath, base)
            for fname in files:
                rel = fname if rel_dir == "." else f"{rel_dir}/{fname}".replace(os.sep, "/")
                if rel.startswith(prefix):
                    out.append(rel)
        return sorted(out)

    def rename(self, name: str, new_name: str) -> None:
        src, dst = self._path(name), self._path(new_name)
        if not os.path.exists(src):
            raise ObjectMissingError(f"no object {name!r} in {self.url}")
        os.makedirs(os.path.dirname(dst) or ".", exist_ok=True)
        os.replace(src, dst)

    def sweep_tmp(self, prefix: str = "") -> None:
        base = os.path.join(self.root, *prefix.split("/")) if prefix else self.root
        base = base.rstrip("/")
        if not os.path.isdir(base):
            return
        for dirpath, _dirs, files in os.walk(base):
            for fname in files:
                if fname.endswith(".tmp"):
                    try:
                        os.remove(os.path.join(dirpath, fname))
                    except OSError:  # pragma: no cover - concurrent cleanup
                        pass

    def close(self) -> None:  # nothing to release
        pass


# ----------------------------------------------------------------------
# sqlite:// — every object a row in one database file
# ----------------------------------------------------------------------
class _SqliteTxn:
    """Commit-on-success / rollback-on-error cursor for one operation."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self.conn = conn

    def __enter__(self) -> sqlite3.Cursor:
        return self.conn.cursor()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.conn.commit()
        else:
            self.conn.rollback()



class SQLiteBackend:
    """All objects in one SQLite file — metadata + small-object backend.

    One table, ``objects(name PRIMARY KEY, data, mutable)``; immutability
    of ``put`` is enforced by the primary key.  Connections are
    per-thread (WAL journal), so the prefetching restore pool's parallel
    reads do not serialise on one connection, and ranged reads use SQL
    ``substr`` so a slot fetch never loads the whole container blob.
    """

    prefers_ranged_reads = True

    def __init__(self, path: str) -> None:
        self.path = path
        self.url = "sqlite://" + os.path.abspath(path)
        self._local = threading.local()
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with self._cursor() as cur:
            cur.execute(
                "CREATE TABLE IF NOT EXISTS objects ("
                " name TEXT PRIMARY KEY,"
                " data BLOB NOT NULL,"
                " mutable INTEGER NOT NULL DEFAULT 0)"
            )

    # -- connection management ----------------------------------------
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
        return conn

    def _cursor(self) -> "_SqliteTxn":
        return _SqliteTxn(self._conn())

    # -- protocol ------------------------------------------------------
    def put(self, name: str, blob: bytes) -> None:
        validate_object_name(name)
        try:
            with self._cursor() as cur:
                cur.execute(
                    "INSERT INTO objects (name, data, mutable) VALUES (?, ?, 0)",
                    (name, sqlite3.Binary(blob)),
                )
        except sqlite3.IntegrityError:
            raise StorageError(f"immutable object {name!r} already stored") from None

    def put_meta(self, name: str, blob: bytes) -> None:
        validate_object_name(name)
        with self._cursor() as cur:
            cur.execute(
                "INSERT INTO objects (name, data, mutable) VALUES (?, ?, 1) "
                "ON CONFLICT(name) DO UPDATE SET data = excluded.data, mutable = 1",
                (name, sqlite3.Binary(blob)),
            )

    def _one(self, query: str, params) -> Optional[tuple]:
        cur = self._conn().execute(query, params)
        try:
            return cur.fetchone()
        finally:
            cur.close()

    def get(self, name: str) -> bytes:
        row = self._one("SELECT data FROM objects WHERE name = ?", (name,))
        if row is None:
            raise ObjectMissingError(f"no object {name!r} in {self.url}")
        return bytes(row[0])

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        row = self._one(
            "SELECT substr(data, ?, ?) FROM objects WHERE name = ?",
            (offset + 1, length, name),
        )
        if row is None:
            raise ObjectMissingError(f"no object {name!r} in {self.url}")
        return bytes(row[0])

    def exists(self, name: str) -> bool:
        return self._one("SELECT 1 FROM objects WHERE name = ?", (name,)) is not None

    def size(self, name: str) -> int:
        row = self._one("SELECT length(data) FROM objects WHERE name = ?", (name,))
        if row is None:
            raise ObjectMissingError(f"no object {name!r} in {self.url}")
        return int(row[0])

    def digest(self, name: str) -> str:
        return hashlib.sha256(self.get(name)).hexdigest()

    def delete(self, name: str) -> None:
        with self._cursor() as cur:
            cur.execute("DELETE FROM objects WHERE name = ?", (name,))
            if cur.rowcount == 0:
                raise ObjectMissingError(f"no object {name!r} in {self.url}")

    def list(self, prefix: str = "") -> List[str]:
        pattern = prefix.replace("\\", "\\\\").replace("%", r"\%").replace("_", r"\_")
        cur = self._conn().execute(
            r"SELECT name FROM objects WHERE name LIKE ? ESCAPE '\' ORDER BY name",
            (pattern + "%",),
        )
        try:
            return [row[0] for row in cur.fetchall()]
        finally:
            cur.close()

    def rename(self, name: str, new_name: str) -> None:
        validate_object_name(new_name)
        with self._cursor() as cur:
            cur.execute("DELETE FROM objects WHERE name = ?", (new_name,))
            cur.execute("UPDATE objects SET name = ? WHERE name = ?", (new_name, name))
            if cur.rowcount == 0:
                raise ObjectMissingError(f"no object {name!r} in {self.url}")

    def sweep_tmp(self, prefix: str = "") -> None:  # transactional: no litter
        pass

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
        self._closed = True


# ----------------------------------------------------------------------
# URL parsing and the repository-spec layer
# ----------------------------------------------------------------------
#: Registered backend schemes (object_store registers "s3" lazily below).
SCHEMES = ("file", "sqlite", "s3")


def _split_scheme(url: str) -> Optional[tuple]:
    """``("scheme", "rest")`` when ``url`` looks like ``scheme://rest``."""
    marker = url.find("://")
    if marker <= 0:
        return None
    scheme = url[:marker].lower()
    if not scheme.isalnum():
        return None
    return scheme, url[marker + 3 :]


def open_backend(url: str) -> StorageBackend:
    """Open the storage backend a URL (or bare directory path) names."""
    split = _split_scheme(url)
    if split is None:
        return wrap_backend(FileBackend(url))
    scheme, rest = split
    if scheme == "file":
        return wrap_backend(FileBackend(_file_path_from(rest)))
    if scheme == "sqlite":
        return wrap_backend(SQLiteBackend(_file_path_from(rest)))
    if scheme == "s3":
        from .object_store import ObjectStoreBackend

        return wrap_backend(ObjectStoreBackend("s3://" + rest))
    raise StorageError(
        f"unknown storage backend scheme {scheme!r} in {url!r} "
        f"(supported: {', '.join(SCHEMES)})"
    )


def _file_path_from(rest: str) -> str:
    """Path part of a ``file://`` / ``sqlite://`` URL.

    ``file:///abs/path`` keeps the absolute path; ``file://rel/path`` is
    relative (there is no meaningful remote-host notion for these
    schemes, so the "netloc" position is simply the first path segment).
    """
    return unquote(rest)


class RepoLocation:
    """A parsed repository spec: primary backend URL + optional cold tier.

    Specs accepted anywhere the CLI takes a repository today:

    * ``/path/to/repo`` — bare directory, implicit ``file://``;
    * ``file:///path/to/repo``;
    * ``sqlite:///path/to/repo.db`` — the whole repository in one file;
    * ``s3://host:port/bucket/prefix`` — the whole repository in an
      object store;
    * any of the above plus ``?archive=URL`` — sealed archival containers
      go to the ``archive`` backend (the cold tier) while recipes,
      manifests and the checkpoint stay on the primary (hot) backend.
    """

    def __init__(self, spec: str) -> None:
        self.spec = spec
        base, query = spec, ""
        marker = spec.find("?")
        if marker >= 0:
            base, query = spec[:marker], spec[marker + 1 :]
        self.archive_url: Optional[str] = None
        if query:
            params = parse_qs(query, keep_blank_values=False)
            archive = params.pop("archive", None)
            if params:
                raise StorageError(
                    f"unknown repository spec parameter(s) "
                    f"{sorted(params)} in {spec!r}"
                )
            if archive:
                self.archive_url = unquote(archive[-1])
        split = _split_scheme(base)
        if split is None:
            self.scheme, self.path = "file", base
        else:
            self.scheme, rest = split
            if self.scheme not in SCHEMES:
                raise StorageError(
                    f"unknown storage backend scheme {self.scheme!r} in {spec!r} "
                    f"(supported: {', '.join(SCHEMES)})"
                )
            self.path = _file_path_from(rest) if self.scheme in ("file", "sqlite") else rest
        if not self.path:
            raise StorageError(f"empty repository path in spec {spec!r}")

    # -- identity ------------------------------------------------------
    @property
    def is_file(self) -> bool:
        """Plain-directory repository with no cold tier: the legacy path."""
        return self.scheme == "file" and self.archive_url is None

    def canonical_url(self) -> str:
        """A normalised URL for identity comparison (self-sync guards)."""
        if self.scheme == "file":
            base = "file://" + os.path.realpath(self.path)
        elif self.scheme == "sqlite":
            base = "sqlite://" + os.path.realpath(self.path)
        else:
            base = f"{self.scheme}://" + self.path.rstrip("/")
        if self.archive_url:
            base += "?archive=" + quote(self.archive_url, safe="")
        return base

    def primary_url(self) -> str:
        if self.scheme == "file":
            return self.path  # keep bare paths bare: display + legacy joins
        return f"{self.scheme}://{self.path}"

    def open_primary(self) -> StorageBackend:
        if self.scheme == "file":
            return wrap_backend(FileBackend(self.path))
        if self.scheme == "sqlite":
            return wrap_backend(SQLiteBackend(self.path))
        from .object_store import ObjectStoreBackend

        return wrap_backend(ObjectStoreBackend(f"s3://{self.path}"))

    def open_archive(self) -> Optional[StorageBackend]:
        """The cold-tier backend, or ``None`` when there is no cold tier."""
        if self.archive_url is None:
            return None
        return open_backend(self.archive_url)

    # -- multi-tenant composition -------------------------------------
    def child(self, name: str) -> str:
        """The spec of tenant ``name`` under this location (daemon roots).

        ``file`` roots keep today's directory-per-tenant layout;
        ``sqlite`` roots hold one ``<name>.db`` per tenant; object-store
        roots give each tenant a key prefix.  A cold-tier URL propagates
        with the same per-tenant suffix, so mixed-tier daemons stay
        mixed-tier per tenant.
        """
        validate_object_name(name)
        if self.scheme == "file":
            base = os.path.join(self.path, name)
            spec = base if self.archive_url is None else "file://" + base
        elif self.scheme == "sqlite":
            spec = "sqlite://" + os.path.join(self.path, name + ".db")
        else:
            spec = f"{self.scheme}://{self.path.rstrip('/')}/{name}"
        if self.archive_url:
            child_archive = _join_backend_url(self.archive_url, name)
            spec += "?archive=" + child_archive
        return spec

    def tenant_names(self) -> List[str]:
        """Existing tenants under this location (daemon ``repo_names``)."""
        if self.scheme == "file":
            if not os.path.isdir(self.path):
                return []
            return sorted(
                entry
                for entry in os.listdir(self.path)
                if os.path.isdir(os.path.join(self.path, entry))
            )
        if self.scheme == "sqlite":
            if not os.path.isdir(self.path):
                return []
            return sorted(
                entry[: -len(".db")]
                for entry in os.listdir(self.path)
                if entry.endswith(".db")
            )
        backend = self.open_primary()
        try:
            names = {key.split("/", 1)[0] for key in backend.list() if "/" in key}
        finally:
            backend.close()
        return sorted(names)

    def exists(self) -> bool:
        """Whether a repository plausibly exists at this location."""
        if self.scheme == "file":
            return os.path.isdir(self.path)
        if self.scheme == "sqlite":
            return os.path.exists(self.path)
        backend = self.open_primary()
        try:
            return bool(backend.list())
        finally:
            backend.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RepoLocation({self.spec!r})"


def _join_backend_url(url: str, name: str) -> str:
    """Append a per-tenant suffix to a backend URL (cold-tier fan-out)."""
    split = _split_scheme(url)
    if split is None:
        return os.path.join(url, name)
    scheme, rest = split
    if scheme == "sqlite":
        return f"sqlite://{os.path.join(_file_path_from(rest), name + '.db')}"
    if scheme == "file":
        return f"file://{os.path.join(_file_path_from(rest), name)}"
    return f"{scheme}://{rest.rstrip('/')}/{name}"


def parse_repo_spec(spec: str) -> RepoLocation:
    """Parse a repository spec (bare path or backend URL + options)."""
    return RepoLocation(spec)
