"""The pipelined restore engine: prefetched container reads, ordered output.

The write twin of :class:`~repro.engine.ingest.PipelinedIngestEngine`.
A restore plan (:mod:`repro.restore.scheduler`) names which containers to
read and which recipe slots each read serves; this module executes such a
plan with a **prefetching container reader pool** — N worker threads issue
:class:`~repro.storage.container_store.FileContainerStore` reads up to a
bounded *readahead* window ahead of consumption — and an order-preserving
reassembly stage that emits chunks strictly in recipe order as their reads
complete.  Container I/O, zlib decompression and (optional) SHA-1
re-verification all release the GIL, so they genuinely overlap with the
Python-side reassembly and with whatever the consumer does with the bytes
(file writes, socket sends).

Memory stays capped: at most ``readahead`` container reads are in flight
or awaiting collection at once, and only the chunks a read was scheduled
to serve are retained (the plan's slot lifetimes bound the assembly
buffer exactly as the policy's cache budget would).

Per-stage timings land in the observability registry:

* ``restore.container_read_seconds`` — one observation per billed read;
* ``restore.assemble_seconds`` — time the reassembly stage spent stalled
  waiting for the next plan step's reads (0 ≈ prefetch fully hides I/O).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from ..chunking.fingerprint import Fingerprinter
from ..chunking.stream import Chunk
from ..errors import RestoreError
from ..observability import MetricsRegistry, get_registry
from ..restore.base import ContainerReader, RestoreAlgorithm, RestoreResult
from ..restore.scheduler import ContainerRead, PlanSpan
from ..storage.recipe import RecipeEntry

#: Ranged slot fetch: ``(cid, fingerprints) -> {fp: Chunk}`` or ``None``
#: when the container can't be partially read (fall back to a full read).
ChunkReader = Callable[[int, Sequence[bytes]], Optional[Dict[bytes, Chunk]]]


def default_readahead(workers: int) -> int:
    """Default readahead window (in container reads) for a pool size."""
    return max(2, 2 * workers)


def verify_chunk(chunk: Chunk, fingerprinter: Fingerprinter) -> Chunk:
    """Re-hash one restored chunk against its recorded fingerprint.

    The real-path port of :class:`~repro.restore.verified.VerifyingRestore`:
    a bit-flip inside a container payload is caught here instead of passing
    silently (containers index chunks by their *recorded* fingerprint).
    """
    if chunk.data is None:
        raise RestoreError(
            f"chunk {chunk.short_fp()} carries no payload to verify"
        )
    actual = fingerprinter.fingerprint(chunk.data)
    if actual != chunk.fingerprint:
        raise RestoreError(
            f"integrity failure: chunk recorded as {chunk.short_fp()} "
            f"hashes to {actual.hex()[:8]}"
        )
    return chunk


def _fetch_slots(
    entries: Sequence[RecipeEntry],
    read: ContainerRead,
    reader: ContainerReader,
    fingerprinter: Optional[Fingerprinter],
    metrics: MetricsRegistry,
    chunk_reader: Optional[ChunkReader] = None,
) -> Dict[int, Chunk]:
    """Worker-side: one billed container read plus slot extraction.

    Extraction (and verification, when requested) happens on the worker so
    the GIL-releasing portions — file read, decompression, hashing — run
    concurrently across the pool.

    When ``chunk_reader`` is given (a store with ranged reads), only the
    scheduled slots' chunks travel over the wire; the fallback — and the
    billing, which is whole-container either way — is the full read.
    """
    started = time.perf_counter()
    if chunk_reader is not None:
        chunks = chunk_reader(
            read.cid, [entries[i].fingerprint for i in read.slots]
        )
        if chunks is not None:
            metrics.observe(
                "restore.container_read_seconds", time.perf_counter() - started
            )
            out: Dict[int, Chunk] = {}
            for i in read.slots:
                chunk = chunks[entries[i].fingerprint]
                if fingerprinter is not None:
                    verify_chunk(chunk, fingerprinter)
                out[i] = chunk
            return out
    container = reader(read.cid)
    metrics.observe("restore.container_read_seconds", time.perf_counter() - started)
    out = {}
    for i in read.slots:
        chunk = container.get_chunk(entries[i].fingerprint)
        if fingerprinter is not None:
            verify_chunk(chunk, fingerprinter)
        out[i] = chunk
    return out


def execute_plan_prefetched(
    entries: Sequence[RecipeEntry],
    plan: Iterator[PlanSpan],
    reader: ContainerReader,
    *,
    workers: int = 4,
    readahead: Optional[int] = None,
    verify: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    chunk_reader: Optional[ChunkReader] = None,
) -> Iterator[Chunk]:
    """Execute a restore plan with a prefetching reader pool.

    Reads are issued up to ``readahead`` ahead of the reassembly cursor;
    chunks are emitted strictly in recipe order.  The billed read sequence
    is exactly the plan's — the same count and order a serial execution
    would issue — only the wall-clock overlap differs.
    """
    if workers < 1:
        raise RestoreError(f"restore workers must be >= 1, got {workers}")
    window = default_readahead(workers) if readahead is None else readahead
    if window < 1:
        raise RestoreError(f"readahead must be >= 1, got {window}")
    registry = metrics if metrics is not None else get_registry()
    fingerprinter = Fingerprinter() if verify else None

    def events() -> Iterator[Tuple[str, object]]:
        for span in plan:
            for read in span.reads:
                yield "read", read
            if span.emit:
                yield "emit", span.emit

    stream = events()
    #: ("read", Future[Dict[int, Chunk]]) and ("emit", indices), plan order.
    queue: deque = deque()
    pending: Dict[int, Chunk] = {}
    inflight = 0
    exhausted = False
    pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="restore")
    try:

        def pump() -> None:
            nonlocal inflight, exhausted
            while not exhausted and inflight < window:
                step = next(stream, None)
                if step is None:
                    exhausted = True
                    return
                kind, value = step
                if kind == "read":
                    queue.append(
                        ("read", pool.submit(
                            _fetch_slots, entries, value, reader,
                            fingerprinter, registry, chunk_reader,
                        ))
                    )
                    inflight += 1
                else:
                    queue.append(("emit", value))

        pump()
        while queue:
            kind, value = queue.popleft()
            if kind == "read":
                stalled = time.perf_counter()
                pending.update(value.result())
                registry.observe(
                    "restore.assemble_seconds", time.perf_counter() - stalled
                )
                inflight -= 1
                pump()
            else:
                for i in value:
                    try:
                        yield pending.pop(i)
                    except KeyError:
                        raise RestoreError(
                            f"restore plan emitted slot {i} before any read "
                            "served it"
                        ) from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _execute_serial(
    entries: Sequence[RecipeEntry],
    plan: Iterator[PlanSpan],
    reader: ContainerReader,
    *,
    verify: bool,
    metrics: MetricsRegistry,
    chunk_reader: Optional[ChunkReader] = None,
) -> Iterator[Chunk]:
    """Single-threaded plan execution with the same timings and checks."""
    fingerprinter = Fingerprinter() if verify else None
    pending: Dict[int, Chunk] = {}
    for span in plan:
        started = time.perf_counter()
        for read in span.reads:
            pending.update(
                _fetch_slots(
                    entries, read, reader, fingerprinter, metrics, chunk_reader
                )
            )
        metrics.observe("restore.assemble_seconds", time.perf_counter() - started)
        for i in span.emit:
            try:
                yield pending.pop(i)
            except KeyError:
                raise RestoreError(
                    f"restore plan emitted slot {i} before any read served it"
                ) from None


def restore_stream(
    system,
    version_id: int,
    *,
    restorer: Optional[RestoreAlgorithm] = None,
    flatten: bool = True,
    workers: int = 1,
    readahead: Optional[int] = None,
    verify: bool = False,
    start: Optional[int] = None,
    stop: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[Chunk]:
    """Restore a version (or an entry range) through the scheduler layer.

    The one real-path restore implementation: resolves entries via the
    engine's :meth:`~repro.pipeline.base.RestoreMixin.resolved_restore_range`
    hook, plans through :meth:`~repro.pipeline.base.RestoreMixin.
    restore_scheduler`, then executes serially (``workers=1``) or with the
    prefetching pool.  ``verify`` re-hashes every chunk against its recipe
    fingerprint (typed :class:`~repro.errors.RestoreError` on mismatch).
    """
    if workers < 1:
        raise RestoreError(f"restore workers must be >= 1, got {workers}")
    if readahead is not None and readahead < 1:
        raise RestoreError(f"readahead must be >= 1, got {readahead}")
    registry = metrics if metrics is not None else get_registry()
    entries = system.resolved_restore_range(version_id, start, stop, flatten)
    plan = system.restore_scheduler(restorer).plan(entries)
    reader = system._read_container
    chunk_reader = getattr(system, "_read_container_chunks", None)
    if workers <= 1:
        return _execute_serial(
            entries, plan, reader, verify=verify, metrics=registry,
            chunk_reader=chunk_reader,
        )
    return execute_plan_prefetched(
        entries, plan, reader,
        workers=workers, readahead=readahead, verify=verify, metrics=registry,
        chunk_reader=chunk_reader,
    )


class PipelinedRestoreEngine:
    """A restore-side façade mirroring :class:`PipelinedIngestEngine`.

    Wraps any :class:`~repro.pipeline.base.BackupEngine` and serves its
    ``restore_chunks`` / ``restore_entry_range`` / ``restore`` surface
    through the prefetching executor.  The wrapped engine's scheduler hook
    decides the policy (FAA by default), so simulation accounting and the
    parallel path can never drift apart.

    Args:
        system: the wrapped engine (must provide the RestoreMixin hooks).
        workers: container-reader pool size.
        readahead: in-flight read cap (default ``2 * workers``).
        verify: re-hash every chunk during restores.
        metrics: stage-timing registry (defaults to the process registry).
    """

    def __init__(
        self,
        system,
        workers: int = 4,
        readahead: Optional[int] = None,
        verify: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise RestoreError(f"restore workers must be >= 1, got {workers}")
        self.system = system
        self.workers = workers
        self.readahead = readahead
        self.verify = verify
        self.metrics = metrics if metrics is not None else get_registry()

    def restore_chunks(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]:
        return restore_stream(
            self.system, version_id, restorer=restorer, flatten=flatten,
            workers=self.workers, readahead=self.readahead,
            verify=self.verify, metrics=self.metrics,
        )

    def restore_entry_range(
        self,
        version_id: int,
        start: int,
        stop: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]:
        return restore_stream(
            self.system, version_id, restorer=restorer, flatten=flatten,
            workers=self.workers, readahead=self.readahead,
            verify=self.verify, start=start, stop=stop, metrics=self.metrics,
        )

    def restore(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> RestoreResult:
        """Restore a version, returning container-read accounting."""
        before = self.system.io.snapshot()
        result = RestoreResult()
        for chunk in self.restore_chunks(version_id, restorer, flatten):
            result.chunks += 1
            result.logical_bytes += chunk.size
        result.container_reads = self.system.io.delta(before).container_reads
        return result
