"""Pipelined, parallel backup ingest (the paper's §5.4 made concrete).

The serial systems model *what* HiDeStore stores; this package models
*how fast* it can ingest: chunking + fingerprinting fan out over a worker
pool (:class:`ParallelChunkPipeline`), filter maintenance runs on a
background executor (:class:`MaintenanceExecutor`), and container writes
detach onto a write-behind thread (:class:`WriteBehindContainerStore`).
:class:`PipelinedIngestEngine` composes all three behind the ordinary
:class:`~repro.pipeline.base.BackupEngine` surface.
"""

from .ingest import PipelinedIngestEngine, build_engine
from .maintenance import MaintenanceExecutor
from .pipeline import LazyBackupStream, ParallelChunkPipeline
from .restore import PipelinedRestoreEngine, execute_plan_prefetched, restore_stream
from .shared_pool import (
    SEGMENT_BYTES,
    IngestPoolError,
    SharedChunkPool,
    chunk_segment,
    iter_segments,
    sweep_orphaned_segments,
)
from .writer import WriteBehindContainerStore, install_write_behind

__all__ = [
    "IngestPoolError",
    "LazyBackupStream",
    "MaintenanceExecutor",
    "ParallelChunkPipeline",
    "PipelinedIngestEngine",
    "PipelinedRestoreEngine",
    "SEGMENT_BYTES",
    "SharedChunkPool",
    "WriteBehindContainerStore",
    "build_engine",
    "chunk_segment",
    "execute_plan_prefetched",
    "install_write_behind",
    "iter_segments",
    "restore_stream",
    "sweep_orphaned_segments",
]
