"""Write-behind container store: overlap container I/O with ingest.

In the paper's pipeline (§5.4) writing sealed containers to disk proceeds
concurrently with chunking, fingerprinting and filtering of the next data.
:class:`WriteBehindContainerStore` reproduces that stage decoupling for any
:class:`~repro.storage.container_store.ContainerStore` backend: ``write``
enqueues the sealed container and returns immediately; a daemon worker
performs the real (possibly file-backed, compressed) write in the
background.

Correctness barrier: every *read-side* operation (``read`` / ``peek`` /
``delete`` / ``__contains__`` / ``container_ids`` / ``stored_bytes``)
flushes the queue first, so readers always observe a fully-written store
and background write errors surface at the next store access instead of
disappearing on the worker thread.
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional

from ..storage.container import Container
from ..storage.container_store import ContainerStore
from ..storage.io_model import IOStats


class WriteBehindContainerStore(ContainerStore):
    """Asynchronous ``write`` façade over an inner container store.

    Everything except ``write`` forwards to ``inner`` (after a flush where
    ordering matters), so the wrapper is observationally identical to the
    wrapped store — the only difference is *when* the write cost is paid.
    """

    def __init__(self, inner: ContainerStore) -> None:
        # No super().__init__: capacity/stats/_next_id all live in `inner`
        # (a second copy would drift); this class only adds the queue.
        self.inner = inner
        self._queue: "queue.Queue[Optional[Container]]" = queue.Queue()
        self._state_lock = threading.Lock()
        self._errors: List[BaseException] = []
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="container-writer", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            container = self._queue.get()
            if container is None:
                self._queue.task_done()
                return
            try:
                self.inner.write(container)
            except BaseException as exc:  # noqa: BLE001 - re-raised in flush()
                with self._state_lock:
                    self._errors.append(exc)
            finally:
                self._queue.task_done()

    def flush(self) -> None:
        """Barrier: wait for queued writes; re-raise the first failure."""
        self._queue.join()
        with self._state_lock:
            errors, self._errors = self._errors, []
        if errors:
            raise errors[0]

    def close(self) -> None:
        """Flush and stop the worker thread (idempotent)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join()
        self.flush()

    @property
    def pending_writes(self) -> int:
        return self._queue.unfinished_tasks

    # ------------------------------------------------------------------
    # Write path — the one asynchronous operation
    # ------------------------------------------------------------------
    def write(self, container: Container) -> None:
        with self._state_lock:
            if self._closed:
                raise RuntimeError("write-behind store is closed")
        container.seal()  # seal synchronously: the caller's view is final
        self._queue.put(container)

    # ------------------------------------------------------------------
    # Read side — flush-first so readers see a consistent store
    # ------------------------------------------------------------------
    def read(self, container_id: int) -> Container:
        self.flush()
        return self.inner.read(container_id)

    def peek(self, container_id: int) -> Container:
        self.flush()
        return self.inner.peek(container_id)

    def delete(self, container_id: int) -> None:
        self.flush()
        self.inner.delete(container_id)

    def __contains__(self, container_id: int) -> bool:
        self.flush()
        return container_id in self.inner

    def container_ids(self) -> List[int]:
        self.flush()
        return self.inner.container_ids()

    def stored_bytes(self) -> int:
        self.flush()
        return self.inner.stored_bytes()

    # ------------------------------------------------------------------
    # Allocation + configuration forward straight to the inner store
    # ------------------------------------------------------------------
    def allocate(self) -> Container:
        return self.inner.allocate()

    @property
    def next_id(self) -> int:
        return self.inner.next_id

    def reserve_ids(self, upto: int) -> None:
        self.inner.reserve_ids(upto)

    @property
    def capacity(self) -> int:
        return self.inner.capacity

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    @stats.setter
    def stats(self, value: IOStats) -> None:
        self.inner.stats = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteBehindContainerStore({self.inner!r}, pending={self.pending_writes})"


def install_write_behind(system) -> WriteBehindContainerStore:
    """Rewire an already-built engine onto a write-behind container store.

    Wraps ``system.containers`` and repoints every component holding a
    direct reference (HiDeStore's active pool and deletion manager).
    Returns the wrapper so the caller can ``flush()``/``close()`` it.
    """
    wrapper = WriteBehindContainerStore(system.containers)
    system.containers = wrapper
    pool = getattr(system, "pool", None)
    if pool is not None:
        pool.store = wrapper
    deletion = getattr(system, "deletion", None)
    if deletion is not None:
        deletion.containers = wrapper
    return wrapper
