"""The pipelined ingest engine: every §5.4 stage overlap in one object.

:class:`PipelinedIngestEngine` composes the three concurrency pieces of the
engine package around any :class:`~repro.pipeline.base.BackupEngine`:

* a :class:`~repro.engine.pipeline.ParallelChunkPipeline` fans chunking +
  fingerprinting over a worker pool (stage 1–2 of the paper's pipeline);
* the wrapped engine classifies chunks batch-by-batch as they arrive,
  overlapping dedup with chunking (stage 3);
* a :class:`~repro.engine.maintenance.MaintenanceExecutor` runs HiDeStore's
  deferred filter maintenance in the background (the offline stage);
* an optional :class:`~repro.engine.writer.WriteBehindContainerStore`
  detaches container persistence from the ingest path (stage 4).

The engine itself satisfies :class:`~repro.pipeline.base.BackupEngine` by
delegation, so analyses, benchmarks and the CLI treat it exactly like the
serial systems; :meth:`join` is the drain barrier that restores and
deletions take automatically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..chunking.base import BaseChunker
from ..chunking.fingerprint import Fingerprinter
from ..chunking.stream import BackupStream, Chunk
from ..pipeline.base import BackupEngine
from ..pipeline.schemes import build_scheme
from ..reports import BackupReport, SystemReport
from ..restore.base import RestoreAlgorithm, RestoreResult
from ..observability import get_registry
from ..storage.recipe import RecipeEntry
from ..units import CONTAINER_SIZE
from .maintenance import MaintenanceExecutor
from .pipeline import ParallelChunkPipeline
from .writer import WriteBehindContainerStore, install_write_behind


class PipelinedIngestEngine:
    """A :class:`BackupEngine` that ingests through a parallel pipeline.

    Args:
        system: the wrapped engine (any scheme).
        pipeline: the chunk/fingerprint pipeline (default: ``workers=1``).
        write_behind: a write-behind store already installed on ``system``
            (joined before restores/deletions and on :meth:`close`).
        maintenance: the background maintenance executor, if the wrapped
            engine uses one (closed on :meth:`close`).
    """

    def __init__(
        self,
        system: BackupEngine,
        pipeline: Optional[ParallelChunkPipeline] = None,
        write_behind: Optional[WriteBehindContainerStore] = None,
        maintenance: Optional[MaintenanceExecutor] = None,
    ) -> None:
        self.system = system
        self.pipeline = pipeline if pipeline is not None else ParallelChunkPipeline()
        self.write_behind = write_behind
        self.maintenance = maintenance

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, items: Iterable[bytes], tag: str = "") -> BackupReport:
        """Chunk, fingerprint and back up ``items`` as one version.

        The wrapped engine consumes the pipeline's output while later items
        are still being chunked — with HiDeStore underneath, the previous
        version's filter maintenance interleaves too.
        """
        with get_registry().timer("engine.ingest_seconds"):
            return self.system.backup(self.pipeline.stream(items, tag=tag))

    def backup(self, stream: BackupStream) -> BackupReport:
        """Back up an already-chunked stream (protocol compatibility)."""
        return self.system.backup(stream)

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def join(self) -> None:
        """Drain every background stage: maintenance, then pending writes.

        After ``join`` returns the wrapped system's state is byte-for-byte
        the state a serial ingest would have produced.
        """
        run_maintenance = getattr(self.system, "run_maintenance", None)
        if run_maintenance is not None:
            run_maintenance()
        elif self.maintenance is not None:
            self.maintenance.drain()
        if self.write_behind is not None:
            self.write_behind.flush()

    def close(self) -> None:
        """Join, then shut down pools and worker threads (idempotent)."""
        self.join()
        self.pipeline.close()
        if self.maintenance is not None:
            self.maintenance.close()
        if self.write_behind is not None:
            self.write_behind.close()

    def __enter__(self) -> "PipelinedIngestEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read side: barrier first, then delegate
    # ------------------------------------------------------------------
    def restore(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> RestoreResult:
        self.join()
        return self.system.restore(version_id, restorer, flatten)

    def restore_chunks(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]:
        self.join()
        return self.system.restore_chunks(version_id, restorer, flatten)

    def restore_entry_range(
        self,
        version_id: int,
        start: int,
        stop: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]:
        self.join()
        return self.system.restore_entry_range(version_id, start, stop, restorer, flatten)

    def resolved_restore_range(
        self,
        version_id: int,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        flatten: bool = True,
    ) -> List[RecipeEntry]:
        self.join()
        return self.system.resolved_restore_range(version_id, start, stop, flatten)

    def restore_scheduler(self, restorer: Optional[RestoreAlgorithm] = None):
        return self.system.restore_scheduler(restorer)

    def _read_container(self, cid: int):
        return self.system._read_container(cid)

    def delete_oldest(self):
        self.join()
        return self.system.delete_oldest()

    def resolved_entries(self, version_id: int) -> List[RecipeEntry]:
        self.join()
        return self.system.resolved_entries(version_id)

    # ------------------------------------------------------------------
    # Introspection delegates
    # ------------------------------------------------------------------
    @property
    def report(self) -> SystemReport:
        return self.system.report

    @property
    def dedup_ratio(self) -> float:
        return self.system.dedup_ratio

    def version_ids(self) -> List[int]:
        return self.system.version_ids()

    def version_summaries(self) -> List[dict]:
        return self.system.version_summaries()

    def stored_bytes(self) -> int:
        self.join()
        return self.system.stored_bytes()

    @property
    def containers(self):
        return self.system.containers

    @property
    def recipes(self):
        return self.system.recipes

    @property
    def io(self):
        return self.system.io

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PipelinedIngestEngine({self.system!r}, {self.pipeline!r})"


def build_engine(
    scheme: str = "hidestore",
    *,
    workers: int = 1,
    executor: str = "process",
    chunker: Optional[BaseChunker] = None,
    fingerprinter: Optional[Fingerprinter] = None,
    queue_depth: Optional[int] = None,
    write_behind: bool = False,
    background_maintenance: bool = False,
    container_size: int = CONTAINER_SIZE,
    **scheme_kwargs,
) -> PipelinedIngestEngine:
    """Build a scheme wrapped in the full ingest pipeline.

    Args:
        scheme: any :data:`~repro.pipeline.schemes.SCHEMES` name.
        workers / executor / queue_depth: pipeline fan-out configuration.
        chunker / fingerprinter: stage-1/2 components (paper defaults).
        write_behind: detach container writes onto a background thread.
        background_maintenance: HiDeStore only — run deferred filter
            maintenance on a background executor instead of at the next
            barrier (implies ``deferred_maintenance=True``).
        container_size / scheme_kwargs: forwarded to the scheme factory.
    """
    maintenance: Optional[MaintenanceExecutor] = None
    if background_maintenance and scheme == "hidestore":
        maintenance = MaintenanceExecutor()
        scheme_kwargs.setdefault("deferred_maintenance", True)
        scheme_kwargs.setdefault("maintenance_executor", maintenance)
    system = build_scheme(scheme, container_size=container_size, **scheme_kwargs)
    wb: Optional[WriteBehindContainerStore] = None
    if write_behind:
        wb = install_write_behind(system)
    pipeline = ParallelChunkPipeline(
        chunker=chunker,
        fingerprinter=fingerprinter,
        workers=workers,
        executor=executor,
        queue_depth=queue_depth,
    )
    return PipelinedIngestEngine(
        system, pipeline=pipeline, write_behind=wb, maintenance=maintenance
    )
