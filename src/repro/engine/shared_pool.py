"""The daemon-lifetime multiprocess ingest plane: one shared chunking pool.

The per-backup pools of :mod:`.pipeline` are the wrong shape for a
multi-tenant daemon: every backup paid pool startup, and payloads crossed
into workers as pickled copies.  This module provides the replacement —
one :class:`SharedChunkPool` owned by the daemon for its whole lifetime
and shared by every tenant/session:

* **Shared-memory handoff.**  Ingest payloads are packed into fixed-size
  segments and written into ``multiprocessing.shared_memory`` slabs; a
  worker receives only an ``(slab name, length)`` descriptor, so a 4 MB
  segment ships as a few dozen bytes instead of a pickled copy.  Workers
  return chunk *metadata* (cut lengths + fingerprints); the parent slices
  payload bytes back out of its own reference to the segment.
* **Determinism by construction.**  Segmentation is a pure function of
  the byte stream (fixed ``SEGMENT_BYTES`` boundaries) and each segment is
  chunked independently with the same :func:`~repro.chunking.vectorized.
  split_fast` kernel, so the serial inline path, a 1-worker pool, an
  N-worker pool and a thread pool all produce byte-identical chunk
  sequences — and therefore identical recipes, containers and dedup stats.
* **Crash-safe respawn.**  A killed worker breaks the whole
  ``ProcessPoolExecutor``; the pool rebuilds it and resubmits the affected
  descriptors (their slabs still hold the payloads) up to
  ``max_retries`` times before surfacing a typed error — at which point
  the repository's rollback guard discards the partial version.
* **Orphan sweep.**  Slab names embed the owning PID; on daemon startup
  :func:`sweep_orphaned_segments` unlinks ``/dev/shm`` segments whose
  owner died without cleanup (a SIGKILL'd daemon, an OOM'd test run).

Observability (all in the shared metrics registry):

* ``ingest.queue_depth`` — gauge, descriptors currently in flight;
* ``ingest.chunk_seconds`` — histogram, per-segment worker chunk+hash time;
* ``ingest.handoff_seconds`` — histogram, parent-side slab copy + slice time;
* ``ingest.segments_total`` / ``ingest.worker_respawns`` /
  ``ingest.orphaned_segments_swept`` — counters.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..chunking.fastcdc import FastCDCChunker
from ..chunking.fingerprint import Fingerprinter
from ..chunking.stream import Chunk
from ..chunking.vectorized import split_fast
from ..errors import ReproError
from ..observability import MetricsRegistry, get_registry

#: Ingest segment size: the unit of worker handoff and of chunk-boundary
#: reset.  4 MiB ≈ one container of chunks per segment; large enough that
#: the vectorized FastCDC kernel dominates, small enough that concurrent
#: tenants interleave fairly on the pool.
SEGMENT_BYTES = 4 * 1024 * 1024

#: Prefix for shared-memory slab names: ``<prefix>-<pid>-<seq>``.  The PID
#: lets a later daemon identify (and sweep) slabs whose owner died.
SHM_PREFIX = "hidestore-ing"

_SLAB_SEQ = itertools.count()


class IngestPoolError(ReproError):
    """The shared chunking pool lost workers beyond its retry budget."""


def iter_segments(blocks: Iterable[bytes], segment_bytes: int = SEGMENT_BYTES) -> Iterator[bytes]:
    """Re-frame an arbitrary block stream into fixed-size ingest segments.

    Segmentation depends only on the concatenated byte stream — never on
    how the transport happened to frame it — so every execution mode
    chunks identical segments.  The final segment is simply shorter.
    """
    buffer = bytearray()
    for block in blocks:
        buffer += block
        while len(buffer) >= segment_bytes:
            yield bytes(buffer[:segment_bytes])
            del buffer[:segment_bytes]
    if buffer:
        yield bytes(buffer)


def chunk_segment(chunker, fingerprinter: Fingerprinter, segment: bytes) -> List[Chunk]:
    """Chunk + fingerprint one segment (the serial inline ingest path)."""
    return [fingerprinter.chunk(piece) for piece in split_fast(chunker, segment)]


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
_W_CHUNKER = None
_W_FINGERPRINTER: Optional[Fingerprinter] = None
_W_SLABS: Dict[str, shared_memory.SharedMemory] = {}


def _ingest_worker_init(chunker, fingerprinter: Fingerprinter) -> None:
    global _W_CHUNKER, _W_FINGERPRINTER
    _W_CHUNKER = chunker
    _W_FINGERPRINTER = fingerprinter


def _attach_slab(name: str) -> shared_memory.SharedMemory:
    slab = _W_SLABS.get(name)
    if slab is None:
        slab = _W_SLABS[name] = shared_memory.SharedMemory(name=name)
    return slab


def _chunk_descriptor_worker(name: str, length: int) -> Tuple[List[int], List[bytes], float]:
    """Chunk the segment at ``(slab, length)``; return metadata only.

    The payload never crosses the process boundary: the worker reads it
    out of the shared slab, and ships back just cut lengths, fingerprints
    and the stage timing.
    """
    slab = _attach_slab(name)
    payload = bytes(slab.buf[:length])
    started = time.perf_counter()
    cuts: List[int] = []
    fingerprints: List[bytes] = []
    for piece in split_fast(_W_CHUNKER, payload):
        cuts.append(len(piece))
        fingerprints.append(_W_FINGERPRINTER.fingerprint(piece))
    return cuts, fingerprints, time.perf_counter() - started


def _chunk_bytes_worker(chunker, fingerprinter: Fingerprinter,
                        segment: bytes) -> Tuple[List[int], List[bytes], float]:
    """Thread-executor variant: no slab, the segment is shared memory already."""
    started = time.perf_counter()
    cuts: List[int] = []
    fingerprints: List[bytes] = []
    for piece in split_fast(chunker, segment):
        cuts.append(len(piece))
        fingerprints.append(fingerprinter.fingerprint(piece))
    return cuts, fingerprints, time.perf_counter() - started


# ----------------------------------------------------------------------
# Orphan sweep
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def sweep_orphaned_segments(metrics: Optional[MetricsRegistry] = None,
                            base: str = "/dev/shm") -> int:
    """Unlink shared-memory slabs whose owning process is gone.

    Returns the number of segments removed.  A no-op on platforms without
    a visible ``/dev/shm``.
    """
    if not os.path.isdir(base):
        return 0
    removed = 0
    prefix = SHM_PREFIX + "-"
    for entry in os.listdir(base):
        if not entry.startswith(prefix):
            continue
        fields = entry[len(prefix):].split("-")
        try:
            pid = int(fields[0])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.remove(os.path.join(base, entry))
            removed += 1
        except OSError:
            continue
    if removed and metrics is not None:
        metrics.inc("ingest.orphaned_segments_swept", removed)
    return removed


# ----------------------------------------------------------------------
# Parent side: the shared pool
# ----------------------------------------------------------------------
class _Slab:
    """One reusable shared-memory segment buffer."""

    __slots__ = ("shm",)

    def __init__(self, size: int) -> None:
        while True:
            name = f"{SHM_PREFIX}-{os.getpid()}-{next(_SLAB_SEQ)}"
            try:
                self.shm = shared_memory.SharedMemory(name=name, create=True, size=size)
                return
            except FileExistsError:  # pragma: no cover - seq collision
                continue

    def destroy(self) -> None:
        try:
            self.shm.close()
            self.shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


class _Pending:
    """An in-flight segment: its future plus what is needed to redo it."""

    __slots__ = ("future", "slab", "segment")

    def __init__(self, future, slab: Optional[_Slab], segment: bytes) -> None:
        self.future = future
        self.slab = slab
        self.segment = segment


class SharedChunkPool:
    """One chunking pool for the daemon's lifetime, shared across tenants.

    Args:
        workers: worker count (>= 1).
        executor: ``"process"`` (default; shared-memory descriptor handoff)
            or ``"thread"`` (no slabs; for tests and GIL-releasing kernels).
        chunker: must be picklable; default paper-config FastCDC.
        fingerprinter: default SHA-1/20B.
        segment_bytes: slab size; segments above it are chunked inline.
        queue_depth: slab count == max descriptors in flight across *all*
            concurrent sessions (default ``2 * workers``).
        max_retries: pool rebuilds tolerated per backup before the typed
            :class:`IngestPoolError` aborts it.
        metrics: shared registry (defaults to the process registry).
    """

    def __init__(
        self,
        workers: int,
        *,
        executor: str = "process",
        chunker=None,
        fingerprinter: Optional[Fingerprinter] = None,
        segment_bytes: int = SEGMENT_BYTES,
        queue_depth: Optional[int] = None,
        max_retries: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("process", "thread"):
            raise ValueError(f"executor must be 'process' or 'thread', got {executor!r}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.workers = workers
        self.executor_kind = executor
        self.chunker = chunker if chunker is not None else FastCDCChunker()
        self.fingerprinter = fingerprinter if fingerprinter is not None else Fingerprinter()
        self.segment_bytes = segment_bytes
        self.queue_depth = queue_depth if queue_depth is not None else 2 * workers
        self.max_retries = max_retries
        self.metrics = metrics if metrics is not None else get_registry()
        self._lock = threading.Lock()
        self._pool: Optional[Executor] = None
        self._closed = False
        self._inflight = 0
        self._slabs: List[_Slab] = []
        self._free: "queue.Queue[_Slab]" = queue.Queue()
        if executor == "process":
            for _ in range(self.queue_depth):
                slab = _Slab(segment_bytes)
                self._slabs.append(slab)
                self._free.put(slab)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._closed:
                raise IngestPoolError("shared chunking pool is closed")
            if self._pool is None:
                if self.executor_kind == "process":
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_ingest_worker_init,
                        initargs=(self.chunker, self.fingerprinter),
                    )
                else:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers, thread_name_prefix="ingest"
                    )
            return self._pool

    def _discard_broken_pool(self, broken: Executor) -> None:
        with self._lock:
            if self._pool is broken:
                self._pool = None
                self.metrics.inc("ingest.worker_respawns")
        broken.shutdown(wait=False, cancel_futures=True)

    def warm(self) -> None:
        """Spawn the workers eagerly (so startup cost is not paid mid-backup)."""
        if self.executor_kind == "process":
            pool = self._ensure_pool()
            try:
                pool.submit(os.getpid).result()
            except BrokenProcessPool:  # pragma: no cover - spawn failure
                self._discard_broken_pool(pool)

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (test/fault-injection hook)."""
        with self._lock:
            pool = self._pool
        if pool is None or self.executor_kind != "process":
            return []
        return [p.pid for p in getattr(pool, "_processes", {}).values()]

    def close(self) -> None:
        """Shut workers down and unlink every slab (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        while True:  # drain the free queue so no one checks out a dead slab
            try:
                self._free.get_nowait()
            except queue.Empty:
                break
        for slab in self._slabs:
            slab.destroy()
        self._slabs = []

    def __enter__(self) -> "SharedChunkPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission plumbing
    # ------------------------------------------------------------------
    def _submit(self, slab: Optional[_Slab], segment: bytes):
        pool = self._ensure_pool()
        if self.executor_kind == "process":
            return pool.submit(_chunk_descriptor_worker, slab.shm.name, len(segment))
        return pool.submit(_chunk_bytes_worker, self.chunker, self.fingerprinter, segment)

    def _submit_with_respawn(self, slab: Optional[_Slab], segment: bytes, state: dict):
        while True:
            try:
                return self._submit(slab, segment)
            except BrokenProcessPool as exc:
                self._note_break(state, exc)

    def _note_break(self, state: dict, exc: Exception) -> None:
        state["breaks"] += 1
        with self._lock:
            broken, self._pool = self._pool, None
            if broken is not None:
                self.metrics.inc("ingest.worker_respawns")
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        if state["breaks"] > self.max_retries:
            raise IngestPoolError(
                f"ingest worker pool broke {state['breaks']} times "
                f"(retry budget {self.max_retries}); aborting backup"
            ) from exc

    def _drain_one(self, pending: "deque[_Pending]", state: dict) -> List[Chunk]:
        record = pending.popleft()
        try:
            while True:
                try:
                    cuts, fingerprints, seconds = record.future.result()
                    break
                except BrokenProcessPool as exc:
                    self._note_break(state, exc)
                    # The slabs of every in-flight descriptor still hold
                    # their payloads; resubmit them in order to the
                    # rebuilt pool.
                    record.future = self._submit_with_respawn(
                        record.slab, record.segment, state)
                    for other in pending:
                        other.future = self._submit_with_respawn(
                            other.slab, other.segment, state)
        except BaseException:
            self._release(record.slab)
            raise
        self.metrics.observe("ingest.chunk_seconds", seconds)
        mark = time.perf_counter()
        chunks: List[Chunk] = []
        offset = 0
        segment = record.segment
        for cut, fingerprint in zip(cuts, fingerprints):
            chunks.append(Chunk(fingerprint, cut, segment[offset:offset + cut]))
            offset += cut
        self._release(record.slab)
        self.metrics.observe("ingest.handoff_seconds", time.perf_counter() - mark)
        return chunks

    def _release(self, slab: Optional[_Slab]) -> None:
        if slab is not None:
            self._free.put(slab)
        with self._lock:
            self._inflight -= 1
            depth = self._inflight
        self.metrics.set_gauge("ingest.queue_depth", depth)

    # ------------------------------------------------------------------
    # The ingest API
    # ------------------------------------------------------------------
    def chunk_segments(self, segments: Iterable[bytes]) -> Iterator[List[Chunk]]:
        """Chunk segments on the shared pool, yielding per-segment chunk
        lists strictly in input order.

        Backpressure: in ``process`` mode the slab pool bounds in-flight
        descriptors across every concurrent session; a session that cannot
        get a slab first drains its own completed work, then waits for
        another session to release one.
        """
        pending: "deque[_Pending]" = deque()
        state = {"breaks": 0}
        try:
            for segment in segments:
                if not segment:
                    continue
                with self._lock:
                    if self._closed:
                        raise IngestPoolError("shared chunking pool is closed")
                if self.executor_kind == "process" and len(segment) <= self.segment_bytes:
                    slab = None
                    while slab is None:
                        try:
                            slab = self._free.get_nowait()
                        except queue.Empty:
                            if pending:
                                yield self._drain_one(pending, state)
                            else:
                                slab = self._free.get()
                    mark = time.perf_counter()
                    slab.shm.buf[:len(segment)] = segment
                    self.metrics.observe("ingest.handoff_seconds",
                                         time.perf_counter() - mark)
                    future = self._submit_with_respawn(slab, segment, state)
                    record = _Pending(future, slab, segment)
                elif self.executor_kind == "process":
                    # Oversized segment (caller used a custom segmenter):
                    # chunk it inline rather than overrun a slab.
                    yield chunk_segment(self.chunker, self.fingerprinter, segment)
                    continue
                else:
                    while len(pending) >= self.queue_depth:
                        yield self._drain_one(pending, state)
                    future = self._submit_with_respawn(None, segment, state)
                    record = _Pending(future, None, segment)
                pending.append(record)
                with self._lock:
                    self._inflight += 1
                    depth = self._inflight
                self.metrics.inc("ingest.segments_total")
                self.metrics.set_gauge("ingest.queue_depth", depth)
            while pending:
                yield self._drain_one(pending, state)
        finally:
            while pending:
                record = pending.popleft()
                record.future.cancel()
                self._release(record.slab)

    def chunk_blocks(self, blocks: Iterable[bytes]) -> Iterator[List[Chunk]]:
        """Segment a raw block stream, then :meth:`chunk_segments` it."""
        return self.chunk_segments(iter_segments(blocks, self.segment_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedChunkPool(workers={self.workers}, "
            f"executor={self.executor_kind!r}, depth={self.queue_depth}, "
            f"segment_bytes={self.segment_bytes})"
        )
