"""Parallel chunking + fingerprinting with order-preserving fan-out.

The CPU-bound front half of a backup — content-defined chunking and SHA-1
fingerprinting — is embarrassingly parallel across independent items (files
or fixed blocks), but recipes demand the original stream order and memory
demands a bound on in-flight work.  :class:`ParallelChunkPipeline` provides
both: items fan out to a process or thread pool, results are yielded
strictly in submission order, and at most ``queue_depth`` items are in
flight at once.

Determinism: each worker runs the same :func:`~repro.chunking.vectorized.
split_fast` + fingerprint code on one whole item, so the produced chunk
sequence is identical for any worker count — ``workers=4`` yields exactly
the chunks of ``workers=1``, in the same order.  (Chunk boundaries reset at
item boundaries; that is part of the contract, not an artefact of the pool.)
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Iterator, List, Optional

from ..chunking.base import BaseChunker
from ..chunking.fastcdc import FastCDCChunker
from ..chunking.fingerprint import Fingerprinter
from ..chunking.stream import BackupStream, Chunk
from ..chunking.vectorized import split_fast

# Per-process worker state, installed once by the pool initializer so each
# item submission ships only its payload, not the chunker configuration.
_WORKER_CHUNKER: Optional[BaseChunker] = None
_WORKER_FINGERPRINTER: Optional[Fingerprinter] = None


def _init_chunk_worker(chunker: BaseChunker, fingerprinter: Fingerprinter) -> None:
    global _WORKER_CHUNKER, _WORKER_FINGERPRINTER
    _WORKER_CHUNKER = chunker
    _WORKER_FINGERPRINTER = fingerprinter


def _chunk_item_worker(payload: bytes) -> List[Chunk]:
    return [
        _WORKER_FINGERPRINTER.chunk(piece)
        for piece in split_fast(_WORKER_CHUNKER, payload)
    ]


class LazyBackupStream(BackupStream):
    """A single-pass :class:`BackupStream` over a live chunk iterator.

    Lets a backup consume pipeline output as it is produced instead of
    materializing every chunk first.  Iterating twice (or asking for
    ``len``/``chunks`` after iteration started) is a programming error and
    raises, rather than silently yielding nothing.
    """

    def __init__(self, chunks: Iterator[Chunk], tag: str = "") -> None:
        self._iterator = chunks
        self._consumed = False
        self.tag = tag

    def __iter__(self) -> Iterator[Chunk]:
        if self._consumed:
            raise RuntimeError("LazyBackupStream can only be iterated once")
        self._consumed = True
        return self._iterator

    def _materialized(self):
        raise RuntimeError(
            "LazyBackupStream is single-pass; use ParallelChunkPipeline"
            ".materialize() when random access or re-iteration is needed"
        )

    def __len__(self) -> int:
        # TypeError, not RuntimeError: list(stream) probes len() for a size
        # hint and only a TypeError tells it "no length" instead of failing.
        raise TypeError(
            "LazyBackupStream is single-pass and has no length; use "
            "ParallelChunkPipeline.materialize() for a sized stream"
        )

    def __getitem__(self, idx: int) -> Chunk:
        self._materialized()

    @property
    def chunks(self):
        self._materialized()


class ParallelChunkPipeline:
    """Fan chunking + fingerprinting over a worker pool, order preserved.

    Args:
        chunker: content-defined chunker (default: FastCDC, paper config).
        fingerprinter: digest engine (default: SHA-1/20B, as the paper).
        workers: parallel workers; ``1`` runs inline with no pool at all.
        executor: ``"process"`` (default; true parallelism, payloads are
            pickled) or ``"thread"`` (cheaper hand-off; parallel only where
            workers release the GIL).
        queue_depth: max in-flight items (default ``2 * workers``), the
            bounded buffer that keeps memory flat on huge backups.
    """

    def __init__(
        self,
        chunker: Optional[BaseChunker] = None,
        fingerprinter: Optional[Fingerprinter] = None,
        workers: int = 1,
        executor: str = "process",
        queue_depth: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("process", "thread"):
            raise ValueError(f"executor must be 'process' or 'thread', got {executor!r}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.chunker = chunker if chunker is not None else FastCDCChunker()
        self.fingerprinter = fingerprinter if fingerprinter is not None else Fingerprinter()
        self.workers = workers
        self.executor_kind = executor
        self.queue_depth = queue_depth if queue_depth is not None else 2 * workers
        self._pool: Optional[Executor] = None

    # ------------------------------------------------------------------
    def _chunk_item(self, payload: bytes) -> List[Chunk]:
        return [
            self.fingerprinter.chunk(piece)
            for piece in split_fast(self.chunker, payload)
        ]

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor_kind == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_chunk_worker,
                    initargs=(self.chunker, self.fingerprinter),
                )
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="chunk"
                )
        return self._pool

    def iter_chunks(self, items: Iterable[bytes]) -> Iterator[Chunk]:
        """Chunk + fingerprint ``items``, yielding in original order.

        The bounded look-ahead keeps ``queue_depth`` items in flight: while
        the caller consumes item *i*'s chunks, items *i+1 … i+depth* are
        being chunked by the pool.
        """
        if self.workers == 1:
            for payload in items:
                yield from self._chunk_item(payload)
            return
        pool = self._ensure_pool()
        if self.executor_kind == "process":
            submit = lambda payload: pool.submit(_chunk_item_worker, payload)  # noqa: E731
        else:
            submit = lambda payload: pool.submit(self._chunk_item, payload)  # noqa: E731
        pending: "deque" = deque()
        try:
            for payload in items:
                pending.append(submit(payload))
                if len(pending) >= self.queue_depth:
                    yield from pending.popleft().result()
            while pending:
                yield from pending.popleft().result()
        finally:
            while pending:
                pending.popleft().cancel()

    # ------------------------------------------------------------------
    def stream(self, items: Iterable[bytes], tag: str = "") -> LazyBackupStream:
        """A single-pass backup stream that chunks while being consumed."""
        return LazyBackupStream(self.iter_chunks(items), tag=tag)

    def materialize(self, items: Iterable[bytes], tag: str = "") -> BackupStream:
        """A fully-buffered backup stream (re-iterable, len()-able)."""
        return BackupStream(list(self.iter_chunks(items)), tag=tag)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool restarts on reuse)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelChunkPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParallelChunkPipeline(workers={self.workers}, "
            f"executor={self.executor_kind!r}, depth={self.queue_depth})"
        )
