"""Background maintenance executor (§5.4, the offline stage made real).

HiDeStore's cold-demotion and container compaction are deliberately
decoupled from the ingest hot path — the paper runs them "offline".  The
repository has long modelled that with ``deferred_maintenance=True``, which
merely *queues* the work; :class:`MaintenanceExecutor` makes the deferral
genuinely asynchronous by running queued tasks on a daemon worker thread
while the next backup (or the caller) proceeds.

The contract mirrors the paper's correctness requirement: restores and
deletions must observe a fully-maintained store, so every consumer calls
:meth:`drain` (directly or via ``HiDeStore.run_maintenance``) before
reading.  ``drain`` is a barrier — it blocks until the queue is empty and
re-raises the first error a task produced, so failures surface at a
well-defined point instead of vanishing on a background thread.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, List, Optional

from ..observability import MetricsRegistry, get_registry


class MaintenanceExecutor:
    """A single background worker draining a FIFO of maintenance tasks.

    One worker (not a pool) is intentional: maintenance tasks mutate shared
    engine state under the engine's lock, so extra workers would only
    contend.  The value of the executor is overlap with ingest, not
    intra-maintenance parallelism.
    """

    def __init__(self, name: str = "maintenance",
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else get_registry()
        self._queue: "queue.Queue[Optional[Callable[[], None]]]" = queue.Queue()
        self._state_lock = threading.Lock()
        self._errors: List[BaseException] = []
        self._completed = 0
        self._pending = 0
        self._closed = False
        self._worker = threading.Thread(target=self._run, name=name, daemon=True)
        self._worker.start()

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                self._queue.task_done()
                return
            try:
                task()
            except BaseException as exc:  # noqa: BLE001 - re-raised in drain()
                with self._state_lock:
                    self._errors.append(exc)
            else:
                with self._state_lock:
                    self._completed += 1
            finally:
                with self._state_lock:
                    self._pending -= 1
                self._queue.task_done()

    # ------------------------------------------------------------------
    def submit(self, task: Callable[[], None]) -> None:
        """Queue one maintenance task for background execution."""
        with self._state_lock:
            if self._closed:
                raise RuntimeError("maintenance executor is closed")
            self._pending += 1
        self._queue.put(task)

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet finished (queued or running)."""
        with self._state_lock:
            return self._pending

    def drain(self) -> int:
        """Barrier: wait for every queued task, then report.

        Returns the number of tasks completed since the previous drain and
        re-raises the first exception any of them produced.
        """
        started = time.perf_counter()
        self._queue.join()
        with self._state_lock:
            errors, self._errors = self._errors, []
            completed, self._completed = self._completed, 0
        if completed:
            # Only meaningful drains are recorded — barrier checks with an
            # empty queue would swamp the histogram with ~0 s samples.
            self.metrics.observe(
                "engine.maintenance_drain_seconds", time.perf_counter() - started
            )
        if errors:
            raise errors[0]
        return completed

    def close(self) -> None:
        """Finish queued work and stop the worker thread (idempotent)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join()

    def __enter__(self) -> "MaintenanceExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
