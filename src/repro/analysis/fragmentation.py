"""Fragmentation analysis over stored systems (Figure 2's effect, quantified).

Given a backed-up system, measure how scattered each version's chunks are:
distinct containers referenced, CFL, and the theoretical best speed factor.
Used by tests and the ablation benchmarks to show fragmentation growth under
traditional dedup and its absence under HiDeStore for new versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..metrics.restore import chunk_fragmentation_level, speed_factor
from ..pipeline.base import BackupEngine
from ..units import CONTAINER_SIZE, MiB


@dataclass
class VersionFragmentation:
    """Physical-layout summary of one stored version."""

    version_id: int
    logical_bytes: int
    containers_referenced: int
    cfl: float

    @property
    def best_speed_factor(self) -> float:
        """Speed factor of a cache-less one-read-per-container restore."""
        return speed_factor(self.logical_bytes, self.containers_referenced)


def measure_fragmentation(
    system: BackupEngine, version_id: int
) -> VersionFragmentation:
    """Fragmentation of one version's *resolved* physical layout."""
    entries = system.resolved_entries(version_id)
    logical = sum(e.size for e in entries)
    referenced = len({e.cid for e in entries if e.cid > 0})
    container_bytes = getattr(system, "container_size", CONTAINER_SIZE)
    return VersionFragmentation(
        version_id=version_id,
        logical_bytes=logical,
        containers_referenced=referenced,
        cfl=chunk_fragmentation_level(entries, container_bytes),
    )


def fragmentation_growth(system: BackupEngine) -> List[VersionFragmentation]:
    """Fragmentation of every stored version, oldest first."""
    return [measure_fragmentation(system, v) for v in system.version_ids()]
