"""The §3 heuristic experiment: version-tag chunk counting (Figure 3).

Replays a workload through an infinite metadata buffer, tagging each chunk
with the most recent backup version that contained it.  After each version,
the per-tag chunk counts are snapshotted.  The paper's observation — the
basis of HiDeStore's design — is that a tag's count drops sharply one
version after it stops being current and then plateaus: chunks missing from
the current version almost never return (macos: two versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..chunking.stream import BackupStream


@dataclass
class ObservationResult:
    """Per-version snapshots of version-tag chunk counts.

    ``counts[k][v]`` is the number of chunks whose most recent version is
    ``v``, measured after processing version ``k`` (both 1-based).
    """

    versions: int = 0
    counts: List[Dict[int, int]] = field(default_factory=list)

    def tag_series(self, tag: int) -> List[int]:
        """The Figure 3 line for one tag: its count after each version."""
        return [snapshot.get(tag, 0) for snapshot in self.counts]

    def final_exclusive(self, tag: int) -> int:
        """Chunks still tagged ``tag`` at the end — exclusive to that version
        (and its predecessors), i.e. HiDeStore's cold set for it."""
        return self.counts[-1].get(tag, 0) if self.counts else 0

    def decay_step(self, tag: int, tolerance: float = 0.02) -> int:
        """How many versions after ``tag`` its count keeps decreasing.

        Returns the number of subsequent versions in which the tag's count
        dropped by more than ``tolerance`` (relative); the paper observes 1
        for kernel/gcc/fslhomes and 2 for macos.
        """
        series = self.tag_series(tag)
        steps = 0
        for k in range(tag, len(series)):
            before = series[k - 1]
            after = series[k]
            if before <= 0:
                break
            if (before - after) / before > tolerance:
                steps += 1
            else:
                break
        return steps


def run_observation(streams: Iterable[BackupStream]) -> ObservationResult:
    """Run the infinite-buffer tagging experiment over a workload."""
    tags: Dict[bytes, int] = {}
    result = ObservationResult()
    for version, stream in enumerate(streams, start=1):
        for chunk in stream:
            tags[chunk.fingerprint] = version
        snapshot: Dict[int, int] = {}
        for tag in tags.values():
            snapshot[tag] = snapshot.get(tag, 0) + 1
        result.counts.append(snapshot)
        result.versions = version
    return result


def format_observation_table(result: ObservationResult, max_tags: int = 8) -> str:
    """Render the Figure 3 data as an aligned text table."""
    tags = list(range(1, min(result.versions, max_tags) + 1))
    header = "after".ljust(8) + "".join(f"V{t}".rjust(9) for t in tags)
    lines = [header]
    for k, snapshot in enumerate(result.counts, start=1):
        row = f"v{k}".ljust(8) + "".join(
            str(snapshot.get(t, 0)).rjust(9) for t in tags
        )
        lines.append(row)
    return "\n".join(lines)
