"""Workload-suitability advisor (paper §4, last paragraph).

    "For the workloads that are not included in this paper, we simply trace
     the chunk distribution among versions and determine whether to use the
     proposed scheme, which produces low overhead since we only need to
     trace the metadata of the chunks."

This module is that tracer.  It replays a workload's chunk metadata and
measures the *reappearance-gap* distribution: when a chunk is absent from a
version, how many versions later does it return (if ever)?  HiDeStore's
double cache with ``history_depth = d`` deduplicates a returning chunk only
if its gap is ≤ d, so the gap histogram directly yields:

* the deduplication-ratio loss HiDeStore would incur at each history depth;
* the smallest depth whose loss is below a tolerance — the recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..chunking.stream import BackupStream


@dataclass
class SuitabilityReport:
    """Outcome of tracing a workload's chunk distribution."""

    versions: int = 0
    logical_bytes: int = 0
    unique_bytes: int = 0
    #: gap (in versions) -> bytes of chunks that reappeared after that gap.
    #: Gap 1 means "absent for zero versions" never happens; a chunk present
    #: in consecutive versions has gap 1 and is always deduplicated.
    reappear_bytes_by_gap: Dict[int, int] = field(default_factory=dict)
    #: bytes of adjacent-version duplicates (gap 1).
    adjacent_duplicate_bytes: int = 0

    @property
    def exact_dedup_ratio(self) -> float:
        if self.logical_bytes == 0:
            return 0.0
        return (self.logical_bytes - self.unique_bytes) / self.logical_bytes

    def missed_bytes_at_depth(self, depth: int) -> int:
        """Duplicate bytes HiDeStore would re-store at a given history depth.

        A chunk returning after a gap ``g`` (absent ``g - 1`` versions) hits
        the cache iff ``g - 1 <= depth - 1``, i.e. ``g <= depth``.  Misses
        also re-seed the cache, so only the first return after a long gap is
        lost; this estimate counts every long-gap return, making it an upper
        bound on the loss.
        """
        return sum(
            size for gap, size in self.reappear_bytes_by_gap.items() if gap > depth
        )

    def dedup_ratio_at_depth(self, depth: int) -> float:
        """Estimated HiDeStore dedup ratio with ``history_depth = depth``."""
        if self.logical_bytes == 0:
            return 0.0
        stored = self.unique_bytes + self.missed_bytes_at_depth(depth)
        return (self.logical_bytes - stored) / self.logical_bytes

    def recommended_depth(self, tolerance: float = 0.005, max_depth: int = 4) -> int:
        """Smallest history depth whose ratio loss vs exact is ≤ tolerance."""
        exact = self.exact_dedup_ratio
        for depth in range(1, max_depth + 1):
            if exact - self.dedup_ratio_at_depth(depth) <= tolerance:
                return depth
        return max_depth

    def is_suitable(self, min_adjacent_redundancy: float = 0.5) -> bool:
        """Whether the workload fits HiDeStore's design assumption.

        Suitable means most redundancy is between *adjacent* versions —
        the §3 observation.  Workloads whose duplicates mostly return after
        long gaps (e.g. weekly-cycle datasets) would need a deep history.
        """
        duplicate_bytes = self.logical_bytes - self.unique_bytes
        if duplicate_bytes == 0:
            return False
        return self.adjacent_duplicate_bytes / duplicate_bytes >= min_adjacent_redundancy

    def summary(self) -> str:
        """Human-readable advisory."""
        lines = [
            f"versions traced:        {self.versions}",
            f"exact dedup ratio:      {self.exact_dedup_ratio:.2%}",
        ]
        for depth in (1, 2, 3):
            lines.append(
                f"est. ratio @ depth {depth}:   {self.dedup_ratio_at_depth(depth):.2%}"
            )
        depth = self.recommended_depth()
        lines.append(f"recommended depth:      {depth}")
        lines.append(
            "suitable for HiDeStore: " + ("yes" if self.is_suitable() else "no")
        )
        return "\n".join(lines)


def trace_suitability(streams: Iterable[BackupStream]) -> SuitabilityReport:
    """Trace chunk metadata across versions (cheap: no payloads touched)."""
    report = SuitabilityReport()
    last_seen: Dict[bytes, int] = {}
    sizes: Dict[bytes, int] = {}
    version = 0
    for stream in streams:
        version += 1
        current: Dict[bytes, int] = {}
        for chunk in stream:
            report.logical_bytes += chunk.size
            if chunk.fingerprint in current:
                # Intra-version repeat: always deduplicated, gap 0.
                report.adjacent_duplicate_bytes += chunk.size
                continue
            current[chunk.fingerprint] = chunk.size
            previous = last_seen.get(chunk.fingerprint)
            if previous is None:
                report.unique_bytes += chunk.size
                sizes[chunk.fingerprint] = chunk.size
            else:
                gap = version - previous
                report.reappear_bytes_by_gap[gap] = (
                    report.reappear_bytes_by_gap.get(gap, 0) + chunk.size
                )
                if gap == 1:
                    report.adjacent_duplicate_bytes += chunk.size
        for fingerprint in current:
            last_seen[fingerprint] = version
    report.versions = version
    return report
