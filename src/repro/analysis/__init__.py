"""Analysis harnesses: the §3 observation experiment and fragmentation probes."""

from .containers import (
    ContainerPopulation,
    active_population,
    archival_population,
    utilization_histogram,
)
from .fragmentation import VersionFragmentation, fragmentation_growth, measure_fragmentation
from .observation import ObservationResult, format_observation_table, run_observation
from .suitability import SuitabilityReport, trace_suitability

__all__ = [
    "ContainerPopulation",
    "active_population",
    "archival_population",
    "utilization_histogram",
    "ObservationResult",
    "VersionFragmentation",
    "format_observation_table",
    "fragmentation_growth",
    "measure_fragmentation",
    "run_observation",
    "SuitabilityReport",
    "trace_suitability",
]
