"""Container-population analytics: utilisation, liveness, age.

Answers the physical-layout questions behind Figures 2/6: how full are the
containers, how much of each is still referenced by retained recipes (dead
space a traditional system accumulates until GC), and how containers age —
for HiDeStore, how the active pool compares with the archival population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Union

from ..core.hidestore import HiDeStore
from ..pipeline.system import BackupSystem


@dataclass
class ContainerPopulation:
    """Summary of one container population (archival, active, or combined)."""

    count: int = 0
    total_capacity: int = 0
    live_bytes: int = 0  # bytes referenced by at least one retained recipe
    held_bytes: int = 0  # bytes physically present
    utilizations: List[float] = field(default_factory=list)

    @property
    def mean_utilization(self) -> float:
        if not self.utilizations:
            return 0.0
        return sum(self.utilizations) / len(self.utilizations)

    @property
    def dead_bytes(self) -> int:
        """Physically held but unreferenced (traditional GC's target)."""
        return max(0, self.held_bytes - self.live_bytes)

    @property
    def dead_fraction(self) -> float:
        if self.held_bytes == 0:
            return 0.0
        return self.dead_bytes / self.held_bytes


def _referenced_fingerprints(system: Union[BackupSystem, HiDeStore]) -> Set[bytes]:
    fingerprints: Set[bytes] = set()
    for version_id in system.recipes.version_ids():
        for entry in system.recipes.peek(version_id).entries:
            fingerprints.add(entry.fingerprint)
    return fingerprints


def _population(containers, live: Set[bytes]) -> ContainerPopulation:
    population = ContainerPopulation()
    for container in containers:
        population.count += 1
        population.total_capacity += container.capacity
        population.held_bytes += container.used
        population.utilizations.append(container.utilization)
        for fingerprint, slot in container.items():
            if fingerprint in live:
                population.live_bytes += slot.size
    return population


def archival_population(system: Union[BackupSystem, HiDeStore]) -> ContainerPopulation:
    """Analytics over the sealed (archival) containers."""
    live = _referenced_fingerprints(system)
    return _population(system.containers.iter_containers(), live)


def active_population(system: HiDeStore) -> ContainerPopulation:
    """Analytics over HiDeStore's active pool."""
    live = _referenced_fingerprints(system)
    return _population(system.pool.iter_containers(), live)


def utilization_histogram(
    population: ContainerPopulation, buckets: int = 10
) -> Dict[str, int]:
    """Bucketised utilisation counts, e.g. ``{"0.9-1.0": 12, ...}``."""
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    histogram: Dict[str, int] = {}
    for b in range(buckets):
        low = b / buckets
        high = (b + 1) / buckets
        histogram[f"{low:.1f}-{high:.1f}"] = 0
    for utilization in population.utilizations:
        index = min(buckets - 1, int(utilization * buckets))
        low = index / buckets
        high = (index + 1) / buckets
        histogram[f"{low:.1f}-{high:.1f}"] += 1
    return histogram
