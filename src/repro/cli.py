"""``hidestore`` — a small CLI over the library for real directory backups.

Commands:

* ``hidestore backup <repo> <source-dir>`` — chunk (FastCDC) + dedup +
  store a directory snapshot into the repository.
* ``hidestore restore <repo> <version> <target-dir>`` — materialise a
  stored version back into a directory.
* ``hidestore versions <repo>`` — list stored versions.
* ``hidestore stats <repo> [--detail]`` — dedup ratio, container counts,
  sizes, optional per-version fragmentation table.
* ``hidestore delete-oldest <repo>`` — expire the oldest version (GC-free).
* ``hidestore verify <repo>`` — integrity-check every chunk reference.
* research tooling: ``trace-generate`` / ``trace-stats`` / ``observe`` /
  ``simulate`` (scheme×preset matrices to CSV).

The repository layout on disk::

    <repo>/containers/container-XXXXXXXX.hdsc
    <repo>/recipes/recipe-XXXXXXXX.hdsr
    <repo>/manifests/manifest-XXXXXXXX.txt   (file boundaries per version)

File boundaries are kept in a plain-text manifest (name + byte length per
file, concatenation order), so a restore can split the reassembled stream
back into files.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

from .chunking import FastCDCChunker
from .core.checkpoint import load_checkpoint, save_checkpoint
from .core.hidestore import HiDeStore
from .core.verify import verify_system
from .errors import ReproError
from .storage.container_store import FileContainerStore
from .storage.recipe import FileRecipeStore
from .units import format_bytes


def _repo_paths(repo: str) -> Tuple[str, str, str]:
    return (
        os.path.join(repo, "containers"),
        os.path.join(repo, "recipes"),
        os.path.join(repo, "manifests"),
    )


def _checkpoint_path(repo: str) -> str:
    return os.path.join(repo, "checkpoint.json")


def open_repository(repo: str, history_depth: int = 1, compress: bool = False) -> HiDeStore:
    """Open (or initialise) a HiDeStore repository directory.

    The sealed world lives in ``containers/`` and ``recipes/``; the volatile
    state (T1 tables, active containers, deletion tags) is reloaded from
    ``checkpoint.json`` — written after every CLI backup — so physical
    locality and the version counter survive across invocations.
    """
    containers_dir, recipes_dir, manifests_dir = _repo_paths(repo)
    os.makedirs(manifests_dir, exist_ok=True)
    checkpoint = _checkpoint_path(repo)
    if os.path.exists(checkpoint):
        return load_checkpoint(
            checkpoint,
            FileContainerStore(containers_dir, compress=compress),
            FileRecipeStore(recipes_dir),
        )
    store = HiDeStore(
        container_store=FileContainerStore(containers_dir, compress=compress),
        recipe_store=FileRecipeStore(recipes_dir),
        history_depth=history_depth,
    )
    existing = store.recipes.version_ids()
    if existing:
        # Legacy repository without a checkpoint: the previous session must
        # have retired the store; resume via recipe priming (§4.1).
        store._next_version = existing[-1] + 1
        store._retired = True
    return store


def _read_tree(source: str) -> List[Tuple[str, str]]:
    """All files under ``source`` as (relative name, absolute path), sorted."""
    entries = []
    for root, _dirs, files in os.walk(source):
        for name in files:
            path = os.path.join(root, name)
            entries.append((os.path.relpath(path, source), path))
    entries.sort()
    return entries


def _stream_blocks(entries: List[Tuple[str, str]], block_size: int = 1 << 20):
    for _rel, path in entries:
        with open(path, "rb") as handle:
            while True:
                block = handle.read(block_size)
                if not block:
                    break
                yield block


def _read_items(entries: List[Tuple[str, str]]):
    """Whole-file payloads for the parallel pipeline, in manifest order."""
    for _rel, path in entries:
        with open(path, "rb") as handle:
            yield handle.read()


def cmd_backup(args: argparse.Namespace) -> int:
    """Chunk, deduplicate and store a directory snapshot."""
    store = open_repository(args.repo, args.history_depth, compress=args.compress)
    # A retired store cannot take further backups until its cache is rebuilt
    # from the last recipe (§4.1's T1 prefetch, cross-session flavour).
    if store._retired and store.recipes.latest_version() is not None:
        store.prime_from_recipe()
    else:
        store._retired = False

    entries = _read_tree(args.source)
    if not entries:
        print(f"error: no files under {args.source}", file=sys.stderr)
        return 1

    write_behind = None
    executor = None
    if args.pipeline:
        from .engine import MaintenanceExecutor, install_write_behind

        write_behind = install_write_behind(store)
        executor = MaintenanceExecutor()
        store.deferred_maintenance = True
        store.attach_maintenance_executor(executor)

    chunker = FastCDCChunker()
    try:
        if args.workers > 1 or args.pipeline:
            from .engine import ParallelChunkPipeline

            with ParallelChunkPipeline(chunker=chunker, workers=args.workers) as pipe:
                report = store.backup(pipe.stream(_read_items(entries), tag=args.tag or ""))
        else:
            stream = chunker.chunk_stream(_stream_blocks(entries), tag=args.tag or "")
            report = store.backup(stream)

        manifest_path = os.path.join(
            _repo_paths(args.repo)[2], f"manifest-{report.version_id:08d}.txt"
        )
        with open(manifest_path, "w", encoding="utf-8") as handle:
            for rel, path in entries:
                handle.write(f"{os.path.getsize(path)}\t{rel}\n")

        # Persist the volatile state so the next invocation resumes
        # seamlessly.  save_checkpoint drains queued maintenance first, so
        # the background executor is idle by the time it is closed below.
        save_checkpoint(store, _checkpoint_path(args.repo))
    finally:
        if executor is not None:
            executor.close()
        if write_behind is not None:
            write_behind.close()
    print(
        f"backed up version {report.version_id}: "
        f"{report.total_chunks} chunks, {format_bytes(report.logical_bytes)} logical, "
        f"{format_bytes(report.stored_bytes)} stored "
        f"({report.duplicate_chunks} duplicates)"
    )
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Materialise a stored version back into a directory."""
    store = open_repository(args.repo)
    manifest_path = os.path.join(
        _repo_paths(args.repo)[2], f"manifest-{args.version:08d}.txt"
    )
    if not os.path.exists(manifest_path):
        print(f"error: no manifest for version {args.version}", file=sys.stderr)
        return 1
    plan: List[Tuple[str, int]] = []
    with open(manifest_path, "r", encoding="utf-8") as handle:
        for line in handle:
            size_str, rel = line.rstrip("\n").split("\t", 1)
            plan.append((rel, int(size_str)))

    os.makedirs(args.target, exist_ok=True)
    chunk_iter = store.restore_chunks(args.version)
    buffer = bytearray()
    restored = 0
    for rel, size in plan:
        while len(buffer) < size:
            chunk = next(chunk_iter)
            if chunk.data is None:
                raise ReproError("repository chunk carries no payload")
            buffer.extend(chunk.data)
        out_path = os.path.join(args.target, rel)
        os.makedirs(os.path.dirname(out_path) or args.target, exist_ok=True)
        with open(out_path, "wb") as handle:
            handle.write(bytes(buffer[:size]))
        del buffer[:size]
        restored += 1
    print(f"restored version {args.version}: {restored} files into {args.target}")
    return 0


def cmd_versions(args: argparse.Namespace) -> int:
    """List stored versions with tags and sizes."""
    store = open_repository(args.repo)
    for version_id in store.recipes.version_ids():
        recipe = store.recipes.peek(version_id)
        print(
            f"version {version_id}: tag={recipe.tag!r} chunks={len(recipe)} "
            f"logical={format_bytes(recipe.logical_size)}"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print repository statistics (optionally per-version detail)."""
    store = open_repository(args.repo)
    logical = sum(store.recipes.peek(v).logical_size for v in store.recipes.version_ids())
    stored = store.containers.stored_bytes() + store.pool.hot_bytes()
    ratio = 0.0 if logical == 0 else (logical - stored) / logical
    print(f"versions:         {len(store.recipes.version_ids())}")
    print(f"logical bytes:    {format_bytes(logical)}")
    print(f"stored bytes:     {format_bytes(stored)}")
    print(f"dedup ratio:      {ratio:.2%}")
    print(f"containers:       {len(store.containers)} archival, "
          f"{store.pool.container_count()} active")
    if args.detail:
        from .analysis import fragmentation_growth

        print()
        print(f"{'version':>8s} {'chunks':>8s} {'logical':>12s} "
              f"{'containers':>11s} {'CFL':>6s} {'best sf':>8s}")
        frags = {f.version_id: f for f in fragmentation_growth(store)}
        for version_id in store.recipes.version_ids():
            recipe = store.recipes.peek(version_id)
            frag = frags[version_id]
            print(f"{version_id:>8d} {len(recipe):>8d} "
                  f"{format_bytes(recipe.logical_size):>12s} "
                  f"{frag.containers_referenced:>11d} {frag.cfl:>6.2f} "
                  f"{frag.best_speed_factor:>8.3f}")
    return 0


def cmd_delete_oldest(args: argparse.Namespace) -> int:
    """Expire the oldest retained version, GC-free."""
    store = open_repository(args.repo)
    versions = store.recipes.version_ids()
    if not versions:
        print("error: repository is empty", file=sys.stderr)
        return 1
    stats = store.delete_oldest()
    manifest_path = os.path.join(
        _repo_paths(args.repo)[2], f"manifest-{versions[0]:08d}.txt"
    )
    if os.path.exists(manifest_path):
        os.remove(manifest_path)
    if os.path.exists(_checkpoint_path(args.repo)):
        save_checkpoint(store, _checkpoint_path(args.repo))
    print(
        f"deleted version {versions[0]}: {stats.containers_deleted} containers, "
        f"{format_bytes(stats.bytes_reclaimed)} reclaimed "
        f"in {stats.delete_seconds * 1000:.2f} ms (no GC)"
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Integrity-check every chunk reference in the repository."""
    store = open_repository(args.repo)
    report = verify_system(store)
    print(report.summary())
    for issue in report.issues[:50]:
        print(f"  - {issue}")
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Research tooling: traces, observation, experiment matrices
# ----------------------------------------------------------------------
def cmd_trace_generate(args: argparse.Namespace) -> int:
    """Write a preset workload out as a trace file."""
    from .workloads import load_preset, write_trace

    workload = load_preset(
        args.preset, versions=args.versions, chunks_per_version=args.chunks
    )
    count = write_trace(args.output, workload.versions())
    print(f"wrote {count} versions of {args.preset!r} to {args.output}")
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    """Print the §4 suitability report for a trace."""
    from .analysis import trace_suitability
    from .workloads import iter_trace

    report = trace_suitability(iter_trace(args.trace))
    print(report.summary())
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    """Run the §3 version-tag experiment over a trace."""
    from .analysis import format_observation_table, run_observation
    from .workloads import iter_trace

    result = run_observation(iter_trace(args.trace))
    print(format_observation_table(result, max_tags=args.tags))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a scheme×preset experiment matrix, optionally to CSV."""
    from .experiments import run_matrix, write_csv
    from .units import parse_bytes

    schemes = {name: {} for name in args.schemes.split(",")}
    rows = run_matrix(
        schemes,
        args.presets.split(","),
        versions=args.versions,
        chunks_per_version=args.chunks,
        container_size=parse_bytes(args.container_size),
        progress=lambda row: print(
            f"  {row['scheme']:>10s} on {row['workload']:<9s} "
            f"ratio={row['dedup_ratio']:.4f} sf(last)={row['speed_factor_last']:.3f}"
        ),
    )
    if args.output:
        write_csv(rows, args.output)
        print(f"wrote {len(rows)} rows to {args.output}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="hidestore",
        description="HiDeStore reproduction: physical-locality dedup backup",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("backup", help="back up a directory snapshot")
    p.add_argument("repo")
    p.add_argument("source")
    p.add_argument("--tag", default=None)
    p.add_argument("--history-depth", type=int, default=1)
    p.add_argument("--compress", action="store_true",
                   help="zlib-compress container files on disk")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="parallel chunking/fingerprinting workers; with "
                        "more than one, files are chunked independently "
                        "(boundaries reset at file edges), so switching "
                        "worker counts mid-repository re-stores edge chunks")
    p.add_argument("--pipeline", action="store_true",
                   help="overlap container writes and filter maintenance "
                        "with ingest (the paper's §5.4 pipeline); implies "
                        "per-file chunking like --workers > 1")
    p.set_defaults(func=cmd_backup)

    p = sub.add_parser("restore", help="restore a version into a directory")
    p.add_argument("repo")
    p.add_argument("version", type=int)
    p.add_argument("target")
    p.set_defaults(func=cmd_restore)

    p = sub.add_parser("versions", help="list stored versions")
    p.add_argument("repo")
    p.set_defaults(func=cmd_versions)

    p = sub.add_parser("stats", help="repository statistics")
    p.add_argument("repo")
    p.add_argument("--detail", action="store_true",
                   help="per-version fragmentation table")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("delete-oldest", help="expire the oldest version")
    p.add_argument("repo")
    p.set_defaults(func=cmd_delete_oldest)

    p = sub.add_parser("verify", help="integrity-check the repository")
    p.add_argument("repo")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("trace-generate", help="write a preset workload as a trace file")
    p.add_argument("preset", choices=["kernel", "gcc", "fslhomes", "macos"])
    p.add_argument("output")
    p.add_argument("--versions", type=int, default=None)
    p.add_argument("--chunks", type=int, default=None)
    p.set_defaults(func=cmd_trace_generate)

    p = sub.add_parser("trace-stats", help="suitability report for a trace (§4)")
    p.add_argument("trace")
    p.set_defaults(func=cmd_trace_stats)

    p = sub.add_parser("observe", help="the §3 version-tag experiment on a trace")
    p.add_argument("trace")
    p.add_argument("--tags", type=int, default=8)
    p.set_defaults(func=cmd_observe)

    p = sub.add_parser("simulate", help="run a scheme×preset matrix, optional CSV")
    p.add_argument("--schemes", default="ddfs,sparse,silo,hidestore")
    p.add_argument("--presets", default="kernel")
    p.add_argument("--versions", type=int, default=None)
    p.add_argument("--chunks", type=int, default=1024)
    p.add_argument("--container-size", default="512KiB")
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
