"""``hidestore`` — a small CLI over the library for real directory backups.

Commands:

* ``hidestore backup <repo> <source-dir>`` — chunk (FastCDC) + dedup +
  store a directory snapshot into the repository.
* ``hidestore restore <repo> <version> <target-dir>`` — materialise a
  stored version back into a directory.
* ``hidestore versions <repo>`` — list stored versions.
* ``hidestore stats <repo> [--detail]`` — dedup ratio, container counts,
  sizes, optional per-version fragmentation table.
* ``hidestore delete-oldest <repo>`` — expire the oldest version (GC-free).
* ``hidestore verify <repo> [--deep] [--remote HOST:PORT]`` —
  integrity-check every chunk reference (``--deep`` re-hashes payloads);
  non-zero exit on any failure.
* ``hidestore replicate <repo> <target> [--remote HOST:PORT]`` —
  incrementally mirror a repository to a directory or a mirror daemon.
* ``hidestore repair <repo> --from MIRROR [--remote HOST:PORT]`` —
  re-fetch damaged containers from a replication mirror.
* ``hidestore serve HOST:PORT --root DIR|URL`` — run the multi-tenant
  backup daemon (see :mod:`repro.server`).
* ``hidestore fake-s3 HOST:PORT`` — run the local S3-style object server
  the ``s3://`` backend targets (testing/CI only).
* research tooling: ``trace-generate`` / ``trace-stats`` / ``observe`` /
  ``simulate`` (scheme×preset matrices to CSV).

``backup`` / ``restore`` / ``versions`` / ``stats`` / ``delete-oldest``
accept ``--remote HOST:PORT``: the ``<repo>`` argument then names a tenant
on a running daemon instead of a local directory, and the same command
implementations drive a :class:`~repro.client.RemoteRepository` over the
wire — local and remote share one code path through the repository surface
(:mod:`repro.repository`).

Everywhere a command accepts a repository path it equally accepts a
**backend URL** (:mod:`repro.storage.backend`): ``file:///dir``,
``sqlite:///path/to.db`` or ``s3://host:port/bucket/prefix``, optionally
with ``?archive=URL`` to put sealed containers on a second (cold-tier)
backend.  A bare path is an implicit ``file://``.  ``hidestore fake-s3``
runs the local S3-style object server the ``s3://`` backend targets
(testing/CI only).

The ``file://`` repository layout on disk::

    <repo>/containers/container-XXXXXXXX.hdsc
    <repo>/recipes/recipe-XXXXXXXX.hdsr
    <repo>/manifests/manifest-XXXXXXXX.txt   (file boundaries per version)

File boundaries are kept in a plain-text manifest (name + byte length per
file, concatenation order), so a restore can split the reassembled stream
back into files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError
from .repository import (
    LocalRepository,
    materialize,
    open_repository,
    read_tree,
)
from .units import format_bytes

__all__ = ["build_parser", "main", "open_repository"]


#: Backup flags that configure the local engine; the server fixes these at
#: ``hidestore serve`` time, so combining them with --remote is an error
#: rather than a silent no-op.
_LOCAL_ONLY_DEFAULTS = {
    "history_depth": 1,
    "compress": False,
    "workers": 1,
    "pipeline": False,
}


def _reject_local_flags(flag: str, local_kwargs: dict) -> None:
    clashing = [
        "--" + key.replace("_", "-")
        for key, default in _LOCAL_ONLY_DEFAULTS.items()
        if local_kwargs.get(key, default) != default
    ]
    if clashing:
        raise ReproError(
            f"{', '.join(clashing)} configure the local engine and have "
            f"no effect over {flag}; the server sets them via "
            "'hidestore serve'"
        )


def _cluster_client(spec: str):
    """A :class:`ClusterClient` from ``--cluster``'s argument: either a
    comma-separated seed list (``host:p1,host:p2``) or a spec-file path."""
    import os

    from .cluster import ClusterClient, ClusterMap

    if os.path.exists(spec):
        cmap = ClusterMap.load(spec)
        return ClusterClient([n.address for n in cmap.nodes], cluster_map=cmap)
    return ClusterClient(spec.split(","))


def _open_target(args: argparse.Namespace, **local_kwargs):
    """The repository front end a command talks to: local dir, daemon,
    or cluster router."""
    if getattr(args, "cluster", None):
        if getattr(args, "remote", None):
            raise ReproError("--remote and --cluster are mutually exclusive")
        _reject_local_flags("--cluster", local_kwargs)
        return _cluster_client(args.cluster).repo(args.repo)
    if getattr(args, "remote", None):
        from .client import RemoteRepository

        _reject_local_flags("--remote", local_kwargs)
        return RemoteRepository(args.remote, args.repo)
    return LocalRepository(args.repo, **local_kwargs)


def cmd_backup(args: argparse.Namespace) -> int:
    """Chunk, deduplicate and store a directory snapshot."""
    entries = read_tree(args.source)
    if not entries:
        print(f"error: no files under {args.source}", file=sys.stderr)
        return 1
    repo = _open_target(
        args,
        history_depth=args.history_depth,
        compress=args.compress,
        workers=args.workers,
        pipeline=args.pipeline,
    )
    report = repo.backup_tree(entries, tag=args.tag or "")
    print(
        f"backed up version {report['version_id']}: "
        f"{report['total_chunks']} chunks, "
        f"{format_bytes(report['logical_bytes'])} logical, "
        f"{format_bytes(report['stored_bytes'])} stored "
        f"({report['duplicate_chunks']} duplicates)"
    )
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Materialise a stored version back into a directory."""
    repo = _open_target(args)
    # Restore knobs run on whichever side executes the restore: locally they
    # size this process's reader pool, over --remote they ride in
    # RESTORE_BEGIN and size the server's (clamped to its cap).
    options = {}
    if args.workers is not None:
        options["workers"] = args.workers
    if args.readahead is not None:
        options["readahead"] = args.readahead
    if args.verify:
        options["verify"] = True
    if args.file is not None:
        options["file"] = args.file
    plan, data = repo.restore(args.version, **options)
    restored = materialize(plan, data, args.target)
    print(f"restored version {args.version}: {restored} files into {args.target}")
    return 0


def cmd_versions(args: argparse.Namespace) -> int:
    """List stored versions with tags and sizes."""
    repo = _open_target(args)
    for row in repo.versions():
        print(
            f"version {row['version_id']}: tag={row['tag']!r} "
            f"chunks={row['chunks']} "
            f"logical={format_bytes(row['logical_bytes'])}"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print repository statistics (optionally per-version detail)."""
    repo = _open_target(args)
    stats = repo.stats()
    print(f"versions:         {stats['versions']}")
    print(f"logical bytes:    {format_bytes(stats['logical_bytes'])}")
    print(f"stored bytes:     {format_bytes(stats['stored_bytes'])}")
    print(f"dedup ratio:      {stats['dedup_ratio']:.2%}")
    print(f"containers:       {stats['containers_archival']} archival, "
          f"{stats['containers_active']} active")
    if "counters" in stats:  # remote repositories report service counters
        counters = stats["counters"]
        print(f"sessions:         {stats.get('active_sessions', 0)} active, "
              f"write queue depth {stats.get('write_queue_depth', 0)}")
        print(f"service counters: {counters['backups']} backups "
              f"({counters['backups_failed']} failed), "
              f"{counters['restores']} restores, "
              f"{format_bytes(counters['bytes_ingested'])} ingested, "
              f"{format_bytes(counters['bytes_restored'])} restored")
    if args.metrics:
        if getattr(args, "remote", None) or getattr(args, "cluster", None):
            metrics = stats.get("metrics", {})
            if not metrics:
                print("error: server does not report metrics", file=sys.stderr)
                return 1
        else:
            from .observability import get_registry

            metrics = get_registry().snapshot()
            if not any(metrics.values()):
                # Local metrics live in the recording process; a fresh
                # `stats` process has nothing to show.  Point at the
                # places that do.
                print()
                print("no local metrics recorded in this process; run an "
                      "operation first or query a daemon with --remote")
        _print_metrics(metrics)
    if args.detail:
        if getattr(args, "remote", None) or getattr(args, "cluster", None):
            print("error: --detail is not available over --remote/--cluster",
                  file=sys.stderr)
            return 1
        from .analysis import fragmentation_growth

        store = repo._open()
        print()
        print(f"{'version':>8s} {'chunks':>8s} {'logical':>12s} "
              f"{'containers':>11s} {'CFL':>6s} {'best sf':>8s}")
        frags = {f.version_id: f for f in fragmentation_growth(store)}
        for version_id in store.recipes.version_ids():
            recipe = store.recipes.peek(version_id)
            frag = frags[version_id]
            print(f"{version_id:>8d} {len(recipe):>8d} "
                  f"{format_bytes(recipe.logical_size):>12s} "
                  f"{frag.containers_referenced:>11d} {frag.cfl:>6.2f} "
                  f"{frag.best_speed_factor:>8.3f}")
    return 0


def _print_metrics(metrics: dict) -> None:
    """Render a metrics snapshot: latency table, then counters/gauges."""
    histograms = metrics.get("histograms", {})
    if histograms:
        print()
        print(f"{'operation latency':<34s} {'count':>7s} {'p50 ms':>9s} "
              f"{'p95 ms':>9s} {'p99 ms':>9s}")
        for name in sorted(histograms):
            snap = histograms[name]
            print(f"{name:<34s} {snap['count']:>7d} "
                  f"{snap['p50'] * 1000:>9.2f} {snap['p95'] * 1000:>9.2f} "
                  f"{snap['p99'] * 1000:>9.2f}")
    counters = metrics.get("counters", {})
    if counters:
        print()
        for name in sorted(counters):
            print(f"{name:<34s} {counters[name]}")
    gauges = metrics.get("gauges", {})
    if gauges:
        print()
        for name in sorted(gauges):
            print(f"{name:<34s} {gauges[name]}")


def cmd_delete_oldest(args: argparse.Namespace) -> int:
    """Expire the oldest retained version, GC-free."""
    repo = _open_target(args)
    result = repo.delete_oldest()
    print(
        f"deleted version {result['version_id']}: "
        f"{result['containers_deleted']} containers, "
        f"{format_bytes(result['bytes_reclaimed'])} reclaimed "
        f"in {result['delete_seconds'] * 1000:.2f} ms (no GC)"
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Integrity-check a repository; non-zero exit on any failure."""
    if getattr(args, "cluster", None) or getattr(args, "remote", None):
        if getattr(args, "cluster", None):
            if getattr(args, "remote", None):
                raise ReproError("--remote and --cluster are mutually exclusive")
            remote = _cluster_client(args.cluster).repo(args.repo)
        else:
            from .client import RemoteRepository

            remote = RemoteRepository(args.remote, args.repo)
        try:
            doc = remote.verify(deep=args.deep)
        finally:
            close = getattr(remote, "close", None)
            if close is not None:
                close()
        print(doc.get("summary", "no report"))
        issues = list(doc.get("issues", []))
        ok = bool(doc.get("ok", False))
    else:
        from .replication.repair import verify_repository

        report = verify_repository(args.repo, deep=args.deep)
        print(report.summary())
        issues, ok = report.issues, report.ok
    for issue in issues[:50]:
        print(f"  - {issue}")
    if len(issues) > 50:
        print(f"  ... and {len(issues) - 50} more")
    return 0 if ok else 1


def cmd_replicate(args: argparse.Namespace) -> int:
    """Incrementally mirror a repository to a directory or mirror daemon."""
    from .replication import ReplicationSession, open_target

    target = open_target(args.target, args.remote)
    try:
        session = ReplicationSession(args.repo, target, journal=args.journal)
        if args.dry_run:
            plan = session.plan()
            summary = plan.summary()
            print(
                f"would ship {summary['ships']} objects "
                f"({format_bytes(summary['bytes_to_ship'])}), "
                f"delete {summary['deletes']}, "
                f"skip {summary['containers_skipped']} containers already mirrored"
            )
            return 0
        report = session.run()
        where = f"{args.target} on {args.remote}" if args.remote else args.target
        print(
            f"replicated {args.repo} -> {where}: "
            f"{report.objects_shipped} objects "
            f"({format_bytes(report.bytes_shipped)}) shipped, "
            f"{report.containers_skipped} containers already mirrored, "
            f"{report.objects_deleted} expired objects deleted "
            f"in {report.duration_seconds:.2f}s"
        )
        if session.journal_path:
            print(f"sync journal: {session.journal_path}")
        return 0
    finally:
        target.close()


def cmd_repair(args: argparse.Namespace) -> int:
    """Re-fetch damaged containers from a replication mirror."""
    from .replication import open_target, repair_from_mirror

    mirror = open_target(args.mirror, args.remote)
    try:
        report = repair_from_mirror(args.repo, mirror, deep=not args.shallow)
    finally:
        mirror.close()
    print(report.summary())
    for name in report.repaired:
        print(f"  repaired {name}")
    for name, reason in sorted(report.unrepaired.items()):
        print(f"  FAILED   {name}: {reason}")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant backup daemon until SIGTERM/SIGINT."""
    import asyncio
    import os
    import signal

    from .client.remote import parse_address
    from .observability import open_event_log
    from .server import BackupDaemon

    host, port = parse_address(args.address)
    event_log = open_event_log(args.log_json, source="daemon")
    cluster_map = None
    if getattr(args, "cluster_map", None):
        from .cluster import ClusterMap

        cluster_map = ClusterMap.load(args.cluster_map)
    ingest_workers = getattr(args, "ingest_workers", None)
    if ingest_workers is None:
        # Auto: parallel chunking wherever there are cores to use, capped
        # so small hosts are not fork-bombed.  Single-core boxes still get
        # one worker — the pool's segment path runs the vectorized chunk
        # kernel, which beats the serial scalar path even without overlap.
        ingest_workers = min(4, os.cpu_count() or 1)
    daemon = BackupDaemon(
        args.root,
        host=host,
        port=port,
        window=args.window,
        history_depth=args.history_depth,
        compress=args.compress,
        drain_timeout=args.drain_timeout,
        restore_workers=args.restore_workers,
        event_log=event_log,
        metrics_interval=args.metrics_interval,
        cluster_map=cluster_map,
        node_name=getattr(args, "node", None),
        replicate_interval=getattr(args, "replicate_interval", 0.0),
        probe_interval=getattr(args, "probe_interval", 0.0),
        probe_failures=getattr(args, "probe_failures", 3),
        probe_timeout=getattr(args, "probe_timeout", 2.0),
        ingest_workers=ingest_workers,
    )

    async def run() -> None:
        await daemon.start()
        print(f"hidestore daemon listening on {daemon.address} (root {args.root})",
              flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                signal.signal(sig, lambda *_: stop.set())
        server_task = asyncio.ensure_future(daemon.serve_forever())
        await stop.wait()
        print("draining: waiting for in-flight sessions...", flush=True)
        await daemon.shutdown()
        server_task.cancel()
        try:
            await server_task
        except asyncio.CancelledError:
            pass
        print("daemon stopped", flush=True)

    try:
        asyncio.run(run())
    finally:
        event_log.close()
    return 0


# ----------------------------------------------------------------------
# Cluster operations (sharded multi-daemon deployments)
# ----------------------------------------------------------------------
def cmd_cluster_serve(args: argparse.Namespace) -> int:
    """Spawn one daemon process per node in a cluster spec and supervise."""
    import os
    import signal
    import time

    from .cluster import ClusterMap, ClusterSupervisor, assign_ports

    cmap = ClusterMap.load(args.spec)
    materialized = assign_ports(cmap)
    if [n.address for n in materialized.nodes] != [n.address for n in cmap.nodes]:
        # :0 ports got real numbers; persist them so clients can route.
        materialized.save(args.spec)
        cmap = materialized
    log_dir = args.log_dir
    if log_dir:
        os.makedirs(log_dir, exist_ok=True)
    supervisor = ClusterSupervisor(
        cmap, args.spec, replicate_interval=args.replicate_interval,
        probe_interval=args.probe_interval,
        probe_failures=args.probe_failures,
        probe_timeout=args.probe_timeout,
    )
    stopping = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stopping.append(True))
    # Spawn node-by-node so each child can get its own log file.
    try:
        from .cluster.supervisor import DaemonProcess

        for node in cmap.nodes:
            log_json = os.path.join(log_dir, f"{node.name}.jsonl") if log_dir else None
            supervisor.daemons[node.name] = DaemonProcess(
                node, args.spec,
                replicate_interval=args.replicate_interval,
                log_json=log_json,
                probe_interval=args.probe_interval,
                probe_failures=args.probe_failures,
                probe_timeout=args.probe_timeout,
            )
        for daemon in supervisor.daemons.values():
            daemon.wait_ready()
    except Exception:
        supervisor.stop()
        raise
    except BaseException:
        # Ctrl-C during spawn: unwind best-effort, never swallow the signal.
        try:
            supervisor.stop()
        except Exception:
            pass
        raise
    print(
        f"cluster up: {len(cmap.nodes)} daemons, epoch {cmap.epoch}, "
        f"replicas {cmap.replicas}",
        flush=True,
    )
    for node in cmap.nodes:
        print(f"  {node.name}: {node.address} (root {node.root})", flush=True)
    try:
        while not stopping:
            time.sleep(0.2)
            for name, daemon in supervisor.daemons.items():
                if not daemon.alive and not getattr(daemon, "_reported", False):
                    daemon._reported = True
                    print(
                        f"warning: daemon {name} exited with "
                        f"{daemon.process.returncode} (not restarting; restore "
                        "traffic fails over to its replicas)",
                        flush=True,
                    )
    finally:
        print("stopping cluster...", flush=True)
        supervisor.stop()
    print("cluster stopped", flush=True)
    return 0


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """Per-node liveness, tenants and (optionally) cluster metrics."""
    client = _cluster_client(args.seeds)
    try:
        doc = client.status(with_metrics=args.metrics)
    finally:
        client.close()
    stale = "  MAP MAY BE STALE (no node answered the last refresh)" \
        if doc.get("stale") else ""
    print(f"cluster epoch {doc['epoch']}, replicas {doc['replicas']}{stale}")
    if doc.get("down"):
        print(f"  marked down (failed over): {', '.join(doc['down'])}")
    exit_code = 1 if doc.get("stale") else 0
    for row in doc["nodes"]:
        marked = " [marked down]" if row.get("marked_down") else ""
        if not row.get("alive"):
            print(f"  {row['name']:<10s} {row['address']:<22s} "
                  f"DOWN{marked} ({row['error']})")
            exit_code = 1
            continue
        drain = " draining" if row.get("draining") else ""
        if "stats_error" in row:
            # Reachable but degraded: the map frame answered, STATS did not.
            print(
                f"  {row['name']:<10s} {row['address']:<22s} up{drain}{marked} "
                f"epoch={row['epoch']} STATS UNAVAILABLE ({row['stats_error']})"
            )
            exit_code = 1
            continue
        print(
            f"  {row['name']:<10s} {row['address']:<22s} up{drain}{marked} "
            f"epoch={row['epoch']} tenants={len(row['tenants'])} "
            f"conns={row['active_connections']} "
            f"uptime={row['uptime_seconds']}s"
        )
        if row["tenants"]:
            print(f"             tenants: {', '.join(row['tenants'])}")
        for name, value in row.get("cluster_metrics", {}).items():
            print(f"             {name:<32s} {value}")
    return exit_code


def cmd_cluster_sync(args: argparse.Namespace) -> int:
    """Ask every node to replicate its primary-owned tenants now."""
    client = _cluster_client(args.seeds)
    try:
        reports = client.sync_all()
    finally:
        client.close()
    failures = 0
    for report in reports:
        node = report.get("node", "?")
        if "error" in report:
            print(f"  {node}: FAILED ({report['error']})")
            failures += 1
            continue
        synced = report.get("synced", {})
        errors = report.get("errors", {})
        detail = ", ".join(
            f"{tenant}->{'/'.join(sorted(copies)) or 'no successors'}"
            for tenant, copies in sorted(synced.items())
        ) or "nothing owned"
        print(f"  {node}: {detail}")
        for pair, message in sorted(errors.items()):
            print(f"    FAILED {pair}: {message}")
            failures += 1
    return 1 if failures else 0


def cmd_cluster_rebalance(args: argparse.Namespace) -> int:
    """Move only the tenants whose ring ownership changed between specs."""
    from .cluster import ClusterClient, ClusterMap, ClusterRebalancer

    old = ClusterMap.load(args.old_spec)
    new = ClusterMap.load(args.new_spec)
    if new.epoch <= old.epoch:
        new = ClusterMap(new.nodes, epoch=old.epoch + 1,
                         replicas=new.replicas, vnodes=new.vnodes)
        new.save(args.new_spec)
        print(f"bumped new spec to epoch {new.epoch} (must exceed {old.epoch})")
    client = ClusterClient([n.address for n in new.nodes], cluster_map=new)
    try:
        report = ClusterRebalancer(client, old, new).run()
    finally:
        client.close()
    print(
        f"rebalance epoch {report['old_epoch']} -> {report['new_epoch']}: "
        f"{report['tenants_moved']} of {report['tenants_checked']} tenants "
        f"moved in {report['duration_seconds']}s"
    )
    for move in report["moves"]:
        shipped = sum(c["bytes_shipped"] for c in move["copies"])
        print(
            f"  {move['tenant']}: {'/'.join(move['old'])} -> "
            f"{'/'.join(move['new'])} ({format_bytes(shipped)} shipped, "
            f"verified, dropped from {', '.join(move['dropped']) or 'nowhere'})"
        )
    if report["unchanged"]:
        print(f"  unchanged: {', '.join(report['unchanged'])}")
    return 0


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------
def cmd_chaos_run(args: argparse.Namespace) -> int:
    """Compile a scenario, run it against a deployment, print the verdict."""
    from .chaos import load_scenario, run_scenario

    scenario = load_scenario(args.scenario)
    deploy_kwargs = {}
    if args.deploy == "cluster":
        deploy_kwargs = {"nodes": args.nodes, "replicas": args.replicas}
    report = run_scenario(
        scenario,
        deploy=args.deploy,
        seed=args.seed,
        report_path=args.report,
        workdir=args.workdir,
        client_mode=args.client_mode,
        deploy_kwargs=deploy_kwargs,
    )
    ops = report["ops"]["by_status"]
    print(
        f"chaos {report['scenario']!r} seed={report['seed']} "
        f"deploy={report['deploy']} schedule={report['schedule']['digest'][:12]}"
    )
    print(
        f"  ops: {report['ops']['attempted']} attempted "
        f"({ops.get('ok', 0)} ok, {ops.get('skipped', 0)} skipped, "
        f"{ops.get('failed_typed', 0)} failed typed, "
        f"{ops.get('failed_untyped', 0)} failed UNTYPED)"
    )
    print(f"  faults injected: {report['faults_injected']}")
    for inv in report["invariants"]:
        status = "ok" if inv["ok"] else "VIOLATED"
        print(f"  invariant {inv['name']} [{inv['phase']}]: {status} "
              f"({inv['checked']} checks)")
        for detail in inv["details"][:5]:
            print(f"    - {detail}")
    if args.report:
        print(f"  report written to {args.report}")
    if not report["ok"]:
        print(f"  VERDICT: {report['invariant_failures']} invariant "
              f"violation(s)", file=sys.stderr)
        return 1
    print("  VERDICT: all invariants hold")
    return 0


def cmd_chaos_compile(args: argparse.Namespace) -> int:
    """Print a scenario's compiled schedule (reproducibility inspection)."""
    import json as _json

    from .chaos import compile_schedule, load_scenario

    schedule = compile_schedule(load_scenario(args.scenario), args.seed)
    doc = {
        "name": schedule.name,
        "seed": schedule.seed,
        "digest": schedule.digest(),
        "tenants": [t.name for t in schedule.tenants],
        "phases": schedule.phases,
        "ops": [op.as_doc() for op in schedule.ops],
        "faults": [f.as_doc() for f in schedule.faults],
    }
    print(_json.dumps(doc, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# Research tooling: traces, observation, experiment matrices
# ----------------------------------------------------------------------
def cmd_trace_generate(args: argparse.Namespace) -> int:
    """Write a preset workload out as a trace file."""
    from .workloads import load_preset, write_trace

    workload = load_preset(
        args.preset, versions=args.versions, chunks_per_version=args.chunks
    )
    count = write_trace(args.output, workload.versions())
    print(f"wrote {count} versions of {args.preset!r} to {args.output}")
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    """Print the §4 suitability report for a trace."""
    from .analysis import trace_suitability
    from .workloads import iter_trace

    report = trace_suitability(iter_trace(args.trace))
    print(report.summary())
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    """Run the §3 version-tag experiment over a trace."""
    from .analysis import format_observation_table, run_observation
    from .workloads import iter_trace

    result = run_observation(iter_trace(args.trace))
    print(format_observation_table(result, max_tags=args.tags))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a scheme×preset experiment matrix, optionally to CSV."""
    from .experiments import run_matrix, write_csv
    from .units import parse_bytes

    schemes = {name: {} for name in args.schemes.split(",")}
    rows = run_matrix(
        schemes,
        args.presets.split(","),
        versions=args.versions,
        chunks_per_version=args.chunks,
        container_size=parse_bytes(args.container_size),
        progress=lambda row: print(
            f"  {row['scheme']:>10s} on {row['workload']:<9s} "
            f"ratio={row['dedup_ratio']:.4f} sf(last)={row['speed_factor_last']:.3f}"
        ),
    )
    if args.output:
        write_csv(rows, args.output)
        print(f"wrote {len(rows)} rows to {args.output}")
    return 0


def cmd_fake_s3(args: argparse.Namespace) -> int:
    """Run the local S3-style object server (testing/CI only)."""
    from .storage.fake_s3 import main as fake_s3_main

    argv = [args.listen]
    if args.latency_ms:
        argv += ["--latency-ms", str(args.latency_ms)]
    if args.log:
        argv += ["--log", args.log]
    return fake_s3_main(argv)


#: Help text every repository positional shares: bare path or backend URL.
_REPO_SPEC_HELP = (
    "repository directory or backend URL (file:///dir, sqlite:///path.db, "
    "s3://host:port/bucket/prefix; add ?archive=URL for a cold tier)"
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_remote_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help="drive a backup daemon instead of a local directory; "
             "<repo> then names a tenant on the server",
    )


def _add_cluster_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cluster",
        metavar="SEEDS|SPEC",
        default=None,
        help="route through a sharded cluster instead of one daemon: "
             "comma-separated seed addresses (host:p1,host:p2) or a "
             "cluster spec file; <repo> is placed on its ring primary, "
             "and idempotent reads fail over to replicas",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="hidestore",
        description="HiDeStore reproduction: physical-locality dedup backup",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("backup", help="back up a directory snapshot")
    p.add_argument("repo", help=_REPO_SPEC_HELP)
    p.add_argument("source")
    p.add_argument("--tag", default=None)
    p.add_argument("--history-depth", type=int, default=1)
    p.add_argument("--compress", action="store_true",
                   help="zlib-compress container files on disk")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="parallel chunking/fingerprinting workers; with "
                        "more than one, files are chunked independently "
                        "(boundaries reset at file edges), so switching "
                        "worker counts mid-repository re-stores edge chunks")
    p.add_argument("--pipeline", action="store_true",
                   help="overlap container writes and filter maintenance "
                        "with ingest (the paper's §5.4 pipeline); implies "
                        "per-file chunking like --workers > 1")
    _add_remote_flag(p)
    _add_cluster_flag(p)
    p.set_defaults(func=cmd_backup)

    p = sub.add_parser("restore", help="restore a version into a directory")
    p.add_argument("repo", help=_REPO_SPEC_HELP)
    p.add_argument("version", type=int)
    p.add_argument("target")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="container-reader pool size; >1 prefetches "
                        "container reads ahead of reassembly (local: this "
                        "process; --remote: the server, up to its cap)")
    p.add_argument("--readahead", type=_positive_int, default=None,
                   help="max container reads in flight (default 2x workers)")
    p.add_argument("--verify", action="store_true",
                   help="re-hash every chunk against its recorded "
                        "fingerprint while restoring")
    p.add_argument("--file", metavar="REL", default=None,
                   help="restore only this file from the snapshot (reads "
                        "just the containers covering it)")
    _add_remote_flag(p)
    _add_cluster_flag(p)
    p.set_defaults(func=cmd_restore)

    p = sub.add_parser("versions", help="list stored versions")
    p.add_argument("repo", help=_REPO_SPEC_HELP)
    _add_remote_flag(p)
    _add_cluster_flag(p)
    p.set_defaults(func=cmd_versions)

    p = sub.add_parser("stats", help="repository statistics")
    p.add_argument("repo", help=_REPO_SPEC_HELP)
    p.add_argument("--detail", action="store_true",
                   help="per-version fragmentation table (local only)")
    p.add_argument("--metrics", action="store_true",
                   help="operation latency histograms (p50/p95/p99) and "
                        "counters; remote: the server's metrics snapshot")
    _add_remote_flag(p)
    _add_cluster_flag(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("delete-oldest", help="expire the oldest version")
    p.add_argument("repo", help=_REPO_SPEC_HELP)
    _add_remote_flag(p)
    _add_cluster_flag(p)
    p.set_defaults(func=cmd_delete_oldest)

    p = sub.add_parser("verify", help="integrity-check the repository")
    p.add_argument("repo", help=_REPO_SPEC_HELP)
    p.add_argument("--deep", action="store_true",
                   help="also re-hash every stored chunk payload and "
                        "container file (catches silent bit-flips)")
    _add_remote_flag(p)
    _add_cluster_flag(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "replicate",
        help="incrementally mirror a repository to a directory or daemon",
    )
    p.add_argument("repo", help="source repository: " + _REPO_SPEC_HELP)
    p.add_argument("target",
                   help="mirror directory or backend URL, or tenant name "
                        "with --remote")
    p.add_argument("--journal", default=None,
                   help="sync-journal path (default: <repo>/.replication/ "
                        "for directory sources; disabled for URL sources)")
    p.add_argument("--dry-run", action="store_true",
                   help="print the sync plan without shipping anything")
    _add_remote_flag(p)
    p.set_defaults(func=cmd_replicate)

    p = sub.add_parser(
        "repair",
        help="re-fetch damaged containers from a replication mirror",
    )
    p.add_argument("repo", help="repository to repair: " + _REPO_SPEC_HELP)
    p.add_argument("--from", dest="mirror", required=True, metavar="MIRROR",
                   help="mirror directory or backend URL, or tenant name "
                        "with --remote")
    p.add_argument("--shallow", action="store_true",
                   help="skip payload re-hashing when scanning for damage")
    _add_remote_flag(p)
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("serve", help="run the multi-tenant backup daemon")
    p.add_argument("address", metavar="HOST:PORT",
                   help="listen address (port 0 picks a free port)")
    p.add_argument("--root", required=True, metavar="DIR|URL",
                   help="tenant root: a directory holding one repository "
                        "per tenant, or a backend URL (sqlite:// keeps one "
                        ".db per tenant, s3:// one key prefix per tenant; "
                        "?archive=URL fans the cold tier out per tenant). "
                        "The old directory-only '--root DIR' phrasing is "
                        "deprecated — bare paths keep working as an "
                        "implicit file:// root")
    p.add_argument("--window", type=_positive_int, default=64,
                   help="ingest credit window (CHUNK_DATA frames in flight)")
    p.add_argument("--history-depth", type=int, default=1)
    p.add_argument("--compress", action="store_true",
                   help="zlib-compress container files of new repositories")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds in-flight sessions get to finish on shutdown")
    p.add_argument("--restore-workers", type=_positive_int, default=4,
                   help="cap (and default) for the per-restore prefetching "
                        "container-reader pool")
    p.add_argument("--log-json", metavar="PATH|-", default=None,
                   help="write structured JSON-lines events (sessions, "
                        "per-request begin/end with trace IDs) to a file, "
                        "or '-' for stdout")
    p.add_argument("--metrics-interval", type=float, default=0.0,
                   help="seconds between periodic metrics_report events in "
                        "the JSON log (0 disables)")
    p.add_argument("--cluster-map", metavar="SPEC", default=None,
                   help="join a sharded cluster: path to the cluster spec "
                        "(epoch, replicas, node list); served to clients "
                        "over the CLUSTER_MAP frame")
    p.add_argument("--node", metavar="NAME", default=None,
                   help="this daemon's node name inside --cluster-map")
    p.add_argument("--replicate-interval", type=float, default=0.0,
                   help="seconds between automatic replica syncs of "
                        "primary-owned tenants to their ring successors "
                        "(0 disables; needs --cluster-map and --node)")
    p.add_argument("--probe-interval", type=float, default=0.0,
                   help="seconds between health probes of this node's ring "
                        "predecessor (0 disables; needs --cluster-map and "
                        "--node).  Enables automatic failover: after "
                        "--probe-failures consecutive misses this daemon "
                        "marks the peer down in an epoch-bumped map, "
                        "deep-verifies the replicas it inherits, and "
                        "gossips the new map")
    p.add_argument("--probe-failures", type=_positive_int, default=3,
                   help="consecutive failed probes before a peer is "
                        "declared dead")
    p.add_argument("--probe-timeout", type=float, default=2.0,
                   help="per-probe connect/read deadline in seconds")
    p.add_argument("--ingest-workers", type=int, default=None, metavar="N",
                   help="size of the daemon-lifetime shared chunking pool: "
                        "CDC + fingerprinting for every tenant's backups "
                        "run on N worker processes fed through shared-"
                        "memory segments (any N yields byte-identical "
                        "repositories).  0 forces the serial in-thread "
                        "path; default auto-sizes to min(4, CPU count)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("cluster", help="sharded multi-daemon cluster operations")
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)

    p = cluster_sub.add_parser(
        "serve", help="spawn one daemon process per node in a cluster spec")
    p.add_argument("spec", help="cluster spec JSON (epoch, replicas, nodes "
                                "with name/address/root); ':0' ports are "
                                "materialised and written back")
    p.add_argument("--replicate-interval", type=float, default=0.0,
                   help="per-daemon automatic replica-sync interval in "
                        "seconds (0 disables)")
    p.add_argument("--probe-interval", type=float, default=0.0,
                   help="per-daemon health-probe interval in seconds "
                        "(0 disables automatic failover)")
    p.add_argument("--probe-failures", type=_positive_int, default=3,
                   help="consecutive failed probes before a node is "
                        "declared dead and its successor promotes")
    p.add_argument("--probe-timeout", type=float, default=2.0,
                   help="per-probe connect/read deadline in seconds")
    p.add_argument("--log-dir", metavar="DIR", default=None,
                   help="write one JSON-lines event log per daemon "
                        "(<DIR>/<node>.jsonl)")
    p.set_defaults(func=cmd_cluster_serve)

    p = cluster_sub.add_parser(
        "status", help="per-node liveness, tenants and cluster metrics")
    p.add_argument("seeds", metavar="SEEDS|SPEC",
                   help="comma-separated daemon addresses or a spec file")
    p.add_argument("--metrics", action="store_true",
                   help="show each node's cluster.* counters (requests "
                        "routed, failovers, tenants moved, replica syncs)")
    p.set_defaults(func=cmd_cluster_status)

    p = cluster_sub.add_parser(
        "sync", help="replicate every primary-owned tenant to its successors")
    p.add_argument("seeds", metavar="SEEDS|SPEC",
                   help="comma-separated daemon addresses or a spec file")
    p.set_defaults(func=cmd_cluster_sync)

    p = cluster_sub.add_parser(
        "rebalance",
        help="move only the tenants whose ring ownership changed between "
             "two specs (deep-verifies before dropping old copies)")
    p.add_argument("old_spec", help="the spec the data was placed under")
    p.add_argument("new_spec", help="the target spec (daemons must be "
                                    "running on it); epoch is auto-bumped "
                                    "if not already above the old spec's")
    p.set_defaults(func=cmd_cluster_rebalance)

    p = sub.add_parser(
        "fake-s3",
        help="run the local S3-style object server (testing/CI only)",
    )
    p.add_argument("listen", metavar="HOST:PORT",
                   help="bind address (port 0 picks a free port)")
    p.add_argument("--latency-ms", type=float, default=0.0,
                   help="artificial per-request latency in milliseconds")
    p.add_argument("--log", metavar="PATH", default=None,
                   help="append a JSONL request log to PATH")
    p.set_defaults(func=cmd_fake_s3)

    p = sub.add_parser("chaos", help="scenario-driven chaos harness")
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    p = chaos_sub.add_parser(
        "run",
        help="replay a multi-tenant scenario with fault injection and "
             "check invariants after every phase (exit 1 on violation)")
    p.add_argument("scenario", help="scenario spec JSON (tenants, phases, "
                                    "op mix, faults)")
    p.add_argument("--deploy", choices=["local", "daemon", "cluster"],
                   default="local",
                   help="deployment shape to drive (default: local)")
    p.add_argument("--seed", type=int, default=None,
                   help="override the spec's seed (same spec + seed "
                        "compiles to the same schedule and fault sites)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the machine-readable JSON report here")
    p.add_argument("--workdir", metavar="DIR", default=None,
                   help="keep deployment state under DIR (default: a "
                        "temporary directory, removed afterwards)")
    p.add_argument("--client-mode", choices=["threads", "process"],
                   default="threads",
                   help="thread clients (full fault support) or one "
                        "subprocess per client (fault-free load only)")
    p.add_argument("--nodes", type=_positive_int, default=3,
                   help="cluster deployment: node count (default 3)")
    p.add_argument("--replicas", type=_positive_int, default=2,
                   help="cluster deployment: copies per tenant (default 2)")
    p.set_defaults(func=cmd_chaos_run)

    p = chaos_sub.add_parser(
        "compile",
        help="print the deterministic op schedule a scenario compiles to")
    p.add_argument("scenario")
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=cmd_chaos_compile)

    p = sub.add_parser("trace-generate", help="write a preset workload as a trace file")
    p.add_argument("preset", choices=["kernel", "gcc", "fslhomes", "macos"])
    p.add_argument("output")
    p.add_argument("--versions", type=int, default=None)
    p.add_argument("--chunks", type=int, default=None)
    p.set_defaults(func=cmd_trace_generate)

    p = sub.add_parser("trace-stats", help="suitability report for a trace (§4)")
    p.add_argument("trace")
    p.set_defaults(func=cmd_trace_stats)

    p = sub.add_parser("observe", help="the §3 version-tag experiment on a trace")
    p.add_argument("trace")
    p.add_argument("--tags", type=int, default=8)
    p.set_defaults(func=cmd_observe)

    p = sub.add_parser("simulate", help="run a scheme×preset matrix, optional CSV")
    p.add_argument("--schemes", default="ddfs,sparse,silo,hidestore")
    p.add_argument("--presets", default="kernel")
    p.add_argument("--versions", type=int, default=None)
    p.add_argument("--chunks", type=int, default=1024)
    p.add_argument("--container-size", default="512KiB")
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
