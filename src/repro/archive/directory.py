"""DirectoryArchive: file-level backup/restore over any backup system.

Wraps a :class:`~repro.core.hidestore.HiDeStore` (or a traditional
:class:`~repro.pipeline.system.BackupSystem`) with the tree-to-stream
serialisation real backup agents perform: a snapshot is the concatenation
of its files in sorted-path order, chunked content-defined, and a
:class:`~repro.archive.manifest.Manifest` remembers where each file landed.

The interesting capability is **partial restore**: pulling a single file
out of a snapshot reads only the recipe-entry span covering it — a handful
of container reads instead of the whole version.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..chunking.base import BaseChunker
from ..chunking.fastcdc import FastCDCChunker
from ..core.hidestore import HiDeStore
from ..errors import ReproError, VersionNotFoundError
from ..pipeline.system import BackupSystem
from ..reports import BackupReport
from .manifest import Manifest

AnySystem = Union[BackupSystem, HiDeStore]


class DirectoryArchive:
    """File-granular snapshots over a chunk-granular backup system.

    Args:
        system: the underlying deduplicating store (HiDeStore by default).
        chunker: content-defined chunker for the serialised stream.
    """

    def __init__(
        self,
        system: Optional[AnySystem] = None,
        chunker: Optional[BaseChunker] = None,
    ) -> None:
        self.system = system if system is not None else HiDeStore()
        self.chunker = chunker if chunker is not None else FastCDCChunker()
        self.manifests: Dict[int, Manifest] = {}

    # ------------------------------------------------------------------
    # Backup
    # ------------------------------------------------------------------
    def backup_tree(self, tree: Mapping[str, bytes], tag: str = "") -> BackupReport:
        """Snapshot an in-memory tree (``{relative path: bytes}``)."""
        ordered: List[Tuple[str, bytes]] = [(p, tree[p]) for p in sorted(tree)]
        if not ordered:
            raise ReproError("cannot back up an empty tree")

        def blocks() -> Iterable[bytes]:
            for _path, data in ordered:
                if data:
                    yield data

        stream = self.chunker.chunk_stream(blocks(), tag=tag)
        report = self.system.backup(stream)
        manifest = Manifest.build(
            report.version_id,
            tag or report.tag,
            [(path, len(data)) for path, data in ordered],
            [chunk.size for chunk in stream],
        )
        self.manifests[report.version_id] = manifest
        return report

    def backup_directory(self, root: str, tag: str = "") -> BackupReport:
        """Snapshot a directory from disk."""
        tree: Dict[str, bytes] = {}
        for dirpath, _dirs, files in os.walk(root):
            for name in files:
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    tree[os.path.relpath(path, root)] = handle.read()
        if not tree:
            raise ReproError(f"no files under {root}")
        return self.backup_tree(tree, tag=tag)

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def _manifest(self, version_id: int) -> Manifest:
        manifest = self.manifests.get(version_id)
        if manifest is None:
            raise VersionNotFoundError(f"no manifest for version {version_id}")
        return manifest

    def restore_file(self, version_id: int, path: str) -> bytes:
        """Partial restore: one file, reading only the containers it spans."""
        manifest = self._manifest(version_id)
        entry = manifest.entry(path)
        if entry.size == 0:
            return b""
        chunks = self.system.restore_entry_range(
            version_id, entry.first_entry, entry.last_entry
        )
        parts: List[bytes] = []
        remaining = entry.size
        skip = entry.skip_bytes
        for chunk in chunks:
            if chunk.data is None:
                raise ReproError("archive restore needs payload-carrying chunks")
            data = chunk.data
            if skip:
                drop = min(skip, len(data))
                data = data[drop:]
                skip -= drop
            if not data:
                continue
            take = data[:remaining]
            parts.append(take)
            remaining -= len(take)
            if remaining == 0:
                break
        if remaining:
            raise ReproError(
                f"short restore of {path!r}: {remaining} bytes missing"
            )
        return b"".join(parts)

    def restore_tree(self, version_id: int) -> Dict[str, bytes]:
        """Full restore: the whole snapshot as ``{relative path: bytes}``."""
        manifest = self._manifest(version_id)
        chunks = self.system.restore_chunks(version_id)
        buffer = bytearray()
        out: Dict[str, bytes] = {}
        files = manifest.files()
        index = 0
        for chunk in chunks:
            if chunk.data is None:
                raise ReproError("archive restore needs payload-carrying chunks")
            buffer.extend(chunk.data)
            while index < len(files) and len(buffer) >= files[index].size:
                entry = files[index]
                out[entry.path] = bytes(buffer[: entry.size])
                del buffer[: entry.size]
                index += 1
        while index < len(files) and files[index].size == 0:
            out[files[index].path] = b""
            index += 1
        if index != len(files):
            raise ReproError(
                f"short restore: {len(files) - index} files missing"
            )
        return out

    def write_tree(self, version_id: int, out_root: str) -> List[str]:
        """Materialise a snapshot on disk; returns the written paths."""
        tree = self.restore_tree(version_id)
        written = []
        for rel in sorted(tree):
            path = os.path.join(out_root, rel)
            os.makedirs(os.path.dirname(path) or out_root, exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(tree[rel])
            written.append(path)
        return written

    # ------------------------------------------------------------------
    def versions(self) -> List[int]:
        return sorted(self.manifests)

    def list_files(self, version_id: int) -> List[str]:
        return self._manifest(version_id).paths()
