"""File manifests: mapping directory trees onto backup streams.

A backup stream is the concatenation of a tree's files in sorted-path order
(how real backup agents serialise a filesystem).  The manifest records, per
file, its path, byte length and byte offset within the stream, plus — once
the stream is chunked — the recipe-entry span covering it, enabling partial
restores that read only the containers a single file touches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class FileEntry:
    """One file inside a snapshot."""

    path: str
    size: int
    offset: int  # byte offset within the concatenated stream
    #: recipe-entry span [first, last) covering this file's bytes, and the
    #: byte offset of the file inside the first entry's chunk.
    first_entry: int = 0
    last_entry: int = 0
    skip_bytes: int = 0


class Manifest:
    """The file table of one backed-up snapshot."""

    def __init__(self, version_id: int, tag: str = "") -> None:
        if version_id <= 0:
            raise ReproError("manifest version IDs are positive")
        self.version_id = version_id
        self.tag = tag
        self._files: Dict[str, FileEntry] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        version_id: int,
        tag: str,
        files: Iterable[Tuple[str, int]],
        chunk_sizes: List[int],
    ) -> "Manifest":
        """Lay out files over the chunked stream.

        Args:
            files: (path, size) pairs in stream (sorted-path) order.
            chunk_sizes: the version's recipe entry sizes, in order.
        """
        manifest = cls(version_id, tag)
        # Prefix sums of chunk boundaries for offset -> entry translation.
        boundaries: List[int] = [0]
        for size in chunk_sizes:
            boundaries.append(boundaries[-1] + size)
        total = boundaries[-1]

        offset = 0
        for path, size in files:
            if size < 0:
                raise ReproError(f"negative size for {path!r}")
            end = offset + size
            if end > total:
                raise ReproError(
                    f"manifest overruns the stream: {path!r} ends at {end}, "
                    f"stream is {total} bytes"
                )
            first = _entry_at(boundaries, offset)
            last = _entry_at(boundaries, max(offset, end - 1)) + 1 if size else first
            manifest._files[path] = FileEntry(
                path=path,
                size=size,
                offset=offset,
                first_entry=first,
                last_entry=last,
                skip_bytes=offset - boundaries[first],
            )
            offset = end
        if offset != total:
            raise ReproError(
                f"manifest underruns the stream: files end at {offset}, "
                f"stream is {total} bytes"
            )
        return manifest

    # ------------------------------------------------------------------
    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)

    def entry(self, path: str) -> FileEntry:
        try:
            return self._files[path]
        except KeyError:
            raise ReproError(
                f"version {self.version_id} has no file {path!r}"
            ) from None

    def paths(self) -> List[str]:
        return sorted(self._files)

    def files(self) -> List[FileEntry]:
        return [self._files[p] for p in self.paths()]

    @property
    def total_bytes(self) -> int:
        return sum(e.size for e in self._files.values())

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "version_id": self.version_id,
                "tag": self.tag,
                "files": [
                    [e.path, e.size, e.offset, e.first_entry, e.last_entry, e.skip_bytes]
                    for e in self.files()
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            document = json.loads(text)
            manifest = cls(document["version_id"], document.get("tag", ""))
            for path, size, offset, first, last, skip in document["files"]:
                manifest._files[path] = FileEntry(path, size, offset, first, last, skip)
        except (KeyError, ValueError, TypeError) as exc:
            raise ReproError(f"corrupt manifest: {exc}") from exc
        return manifest


def _entry_at(boundaries: List[int], byte_offset: int) -> int:
    """Index of the recipe entry containing ``byte_offset`` (binary search)."""
    import bisect

    index = bisect.bisect_right(boundaries, byte_offset) - 1
    return max(0, index)
