"""File-level archive layer: directory snapshots + partial restores."""

from .directory import DirectoryArchive
from .manifest import FileEntry, Manifest

__all__ = ["DirectoryArchive", "FileEntry", "Manifest"]
