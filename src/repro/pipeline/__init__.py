"""Backup/restore pipeline: the Destor-equivalent platform layer.

:class:`~repro.pipeline.system.BackupSystem` assembles index + rewriter +
stores into the traditional dedup pipeline; :mod:`~repro.pipeline.schemes`
names the exact configurations the paper evaluates.
"""

from ..reports import BackupReport, SystemReport
from .base import BackupEngine, RestoreMixin
from .gc import GCDeletionManager, GCStats
from .schemes import SCHEMES, build_scheme
from .system import BackupSystem

__all__ = [
    "BackupEngine",
    "BackupReport",
    "BackupSystem",
    "GCDeletionManager",
    "GCStats",
    "RestoreMixin",
    "SCHEMES",
    "SystemReport",
    "build_scheme",
]
