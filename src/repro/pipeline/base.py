"""The common backup-engine surface shared by every scheme.

Historically :class:`~repro.pipeline.system.BackupSystem` (the traditional
index → rewrite → store pipeline) and :class:`~repro.core.hidestore.HiDeStore`
(the paper's system) were two unrelated classes with a copy-pasted restore
path, and every benchmark or CLI call site special-cased the pair.  This
module foregrounds the shared surface:

* :class:`BackupEngine` — a runtime-checkable :class:`~typing.Protocol`
  naming the operations every scheme supports (``backup`` / ``restore`` /
  ``restore_chunks`` / ``restore_entry_range`` / ``version_ids`` /
  ``stored_bytes`` / ``dedup_ratio`` / ``report``).  Factories in
  :mod:`~repro.pipeline.schemes` are typed against it, so callers never
  need to know which concrete engine they received.
* :class:`RestoreMixin` — the shared restore-path implementation, written
  once over three small hooks (:meth:`RestoreMixin._prepare_restore`,
  :meth:`RestoreMixin._resolve_restore_entries`,
  :meth:`RestoreMixin._read_container`) that the engines override where
  their semantics genuinely differ (HiDeStore drains queued maintenance
  and flattens the recipe chain before resolving active-chunk locations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Protocol, runtime_checkable

from ..chunking.stream import BackupStream, Chunk
from ..errors import VersionNotFoundError
from ..reports import BackupReport, SystemReport
from ..restore.base import RestoreAlgorithm, RestoreResult
from ..restore.scheduler import scheduler_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..restore.scheduler import RestoreScheduler
    from ..storage.container import Container
    from ..storage.recipe import RecipeEntry


@runtime_checkable
class BackupEngine(Protocol):
    """What every backup scheme exposes, whatever its internals.

    Both :class:`~repro.pipeline.system.BackupSystem` and
    :class:`~repro.core.hidestore.HiDeStore` satisfy this protocol, as does
    :class:`~repro.engine.ingest.PipelinedIngestEngine`, which wraps either.
    ``isinstance(system, BackupEngine)`` checks are supported.
    """

    report: SystemReport

    def backup(self, stream: BackupStream) -> BackupReport: ...

    def restore(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> RestoreResult: ...

    def restore_chunks(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]: ...

    def restore_entry_range(
        self,
        version_id: int,
        start: int,
        stop: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]: ...

    def version_ids(self) -> List[int]: ...

    def version_summaries(self) -> "List[dict]": ...

    def stored_bytes(self) -> int: ...

    @property
    def dedup_ratio(self) -> float: ...


class RestoreMixin:
    """Shared restore-path implementation for backup engines.

    Concrete engines provide ``recipes``, ``containers``, ``io`` and
    ``restorer`` attributes and may override the hooks:

    * :meth:`_prepare_restore` — run before reading the recipe (HiDeStore
      drains queued maintenance and flattens the recipe chain here);
    * :meth:`_resolve_restore_entries` — map recipe entries to concrete
      container IDs (HiDeStore resolves active-chunk markers here);
    * :meth:`_read_container` — fetch one container by ID (HiDeStore routes
      active containers through its pool here).

    The ``flatten`` argument is HiDeStore's "run Algorithm 1 first" switch;
    engines without a recipe chain accept and ignore it, so callers can use
    one signature for every scheme.
    """

    def _prepare_restore(self, flatten: bool) -> None:
        """Hook: bring the store into a restorable state (default no-op)."""

    def _resolve_restore_entries(
        self, entries: "List[RecipeEntry]", version_id: int
    ) -> "List[RecipeEntry]":
        """Hook: map entries to concrete container IDs (default identity)."""
        return entries

    def _read_container(self, cid: int) -> "Container":
        """Hook: fetch one container (default: the archival store)."""
        return self.containers.read(cid)

    def _read_container_chunks(self, cid, fingerprints):
        """Hook: fetch only the named chunks of one container, or ``None``.

        Backends that support ranged reads (object stores) serve restore
        slots without shipping the whole container; stores that don't —
        or containers that can't be partially read (compressed blobs,
        in-memory pool containers) — return ``None`` and the caller falls
        back to :meth:`_read_container`.  Billing is identical either way:
        a ranged fetch still bills one whole-container read, so IOStats
        parity with the full-read path holds.
        """
        read_chunks = getattr(self.containers, "read_chunks", None)
        if read_chunks is None:
            return None
        return read_chunks(cid, fingerprints)

    # ------------------------------------------------------------------
    def resolved_restore_range(
        self,
        version_id: int,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        flatten: bool = True,
    ) -> "List[RecipeEntry]":
        """Prepare the store and resolve a version's entries for restoring.

        The one entry-resolution path every restore flavour shares: full
        restores (``start is None``), partial entry-range restores, the
        serial algorithm layer and the pipelined engine all come through
        here, so maintenance draining / chain flattening / active-chunk
        resolution happen identically everywhere.
        """
        if version_id not in self.recipes:
            raise VersionNotFoundError(f"no backup version {version_id}")
        self._prepare_restore(flatten)
        recipe = self.recipes.read(version_id)
        rows = recipe.entries if start is None else recipe.entries[start:stop]
        return self._resolve_restore_entries(list(rows), version_id)

    def restore_scheduler(
        self, restorer: Optional[RestoreAlgorithm] = None
    ) -> "RestoreScheduler":
        """The restore plan scheduler for this engine's (or the given) policy.

        This is the hook the pipelined restore engine calls: the returned
        scheduler turns :meth:`resolved_restore_range` output into an
        ordered container-read plan that a prefetching executor can run —
        with exactly the read sequence the serial algorithm would issue.
        """
        algorithm = restorer if restorer is not None else self.restorer
        return scheduler_for(algorithm)

    def restore_chunks(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]:
        """Stream a stored version's chunks in original order."""
        entries = self.resolved_restore_range(version_id, flatten=flatten)
        algorithm = restorer if restorer is not None else self.restorer
        return algorithm.restore(entries, self._read_container)

    def restore_entry_range(
        self,
        version_id: int,
        start: int,
        stop: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> Iterator[Chunk]:
        """Restore a contiguous slice of a version's recipe entries.

        Used for partial restores (e.g. one file out of a snapshot): only
        the containers covering entries ``[start, stop)`` are read.
        """
        entries = self.resolved_restore_range(version_id, start, stop, flatten)
        algorithm = restorer if restorer is not None else self.restorer
        return algorithm.restore(entries, self._read_container)

    def restore(
        self,
        version_id: int,
        restorer: Optional[RestoreAlgorithm] = None,
        flatten: bool = True,
    ) -> RestoreResult:
        """Restore a version, returning container-read accounting."""
        before = self.io.snapshot()
        result = RestoreResult()
        for chunk in self.restore_chunks(version_id, restorer, flatten):
            result.chunks += 1
            result.logical_bytes += chunk.size
        result.container_reads = self.io.delta(before).container_reads
        return result

    # ------------------------------------------------------------------
    def version_summaries(self) -> List[dict]:
        """Per-version metadata rows (billing-free): id, tag, chunks, bytes.

        This is the ``versions`` listing every front end (CLI, service
        ``VERSIONS`` frame) renders; it reads recipe metadata only, so it is
        safe to call concurrently with restores.
        """
        rows = []
        for version_id in self.recipes.version_ids():
            recipe = self.recipes.peek(version_id)
            rows.append(
                {
                    "version_id": version_id,
                    "tag": recipe.tag,
                    "chunks": len(recipe),
                    "logical_bytes": recipe.logical_size,
                }
            )
        return rows

    def resolved_entries(self, version_id: int) -> "List[RecipeEntry]":
        """A version's entries with concrete container IDs, billing-free.

        Used by the fragmentation/locality analyses, which need the
        physical layout without perturbing the I/O counters.
        """
        if version_id not in self.recipes:
            raise VersionNotFoundError(f"no backup version {version_id}")
        self._prepare_restore(flatten=True)
        recipe = self.recipes.peek(version_id)
        return self._resolve_restore_entries(list(recipe.entries), version_id)
