"""Named scheme configurations matching the paper's evaluation (§5.1).

Deduplication comparisons (Figures 8-10): ``ddfs``, ``sparse``, ``silo``.
Restore comparisons (Figure 11): ``baseline`` (no rewriting + FAA),
``capping`` (+FAA), ``cbr``/``cfl``/``fbw`` (+FAA), ``alacc`` (FBW rewriting
+ ALACC cache, the pairing §5.3 describes), and ``hidestore``.

Every factory returns a fresh system.  Keyword conventions:

* ``index_kwargs`` / ``rewriter_kwargs`` / ``restorer_kwargs`` reach the
  respective component constructors;
* anything else (``container_size``, ``restorer``, stores, …) reaches
  :class:`~repro.pipeline.system.BackupSystem` (or
  :class:`~repro.core.hidestore.HiDeStore`), so benchmarks can sweep
  parameters freely.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..index.ddfs import DDFSIndex
from ..index.blc import BLCIndex
from ..index.chunkstash import ChunkStashIndex
from ..index.extreme_binning import ExtremeBinningIndex
from ..index.full_index import ExactFullIndex
from ..index.silo import SiLoIndex
from ..index.sparse import SparseIndex
from ..restore.alacc import ALACCRestore
from ..restore.faa import FAARestore
from ..rewriting.base import Rewriter
from ..rewriting.capping import CappingRewriter
from ..rewriting.cbr import CBRRewriter
from ..rewriting.cfl import CFLRewriter
from ..rewriting.fbw import FBWRewriter
from ..rewriting.greedy_capping import GreedyCappingRewriter
from ..rewriting.none import NoRewriter
from .base import BackupEngine
from .system import BackupSystem

#: Back-compat alias — every scheme now satisfies the same protocol.
AnySystem = BackupEngine


def _build(index_cls, rewriter_cls, default_restorer_cls, **kwargs) -> BackupSystem:
    index = index_cls(**kwargs.pop("index_kwargs", {}))
    rewriter: Rewriter = rewriter_cls(**kwargs.pop("rewriter_kwargs", {}))
    restorer_kwargs = kwargs.pop("restorer_kwargs", {})
    kwargs.setdefault("restorer", default_restorer_cls(**restorer_kwargs))
    return BackupSystem(index, rewriter, **kwargs)


def build_baseline(**kwargs) -> BackupSystem:
    """Exact dedup, no rewriting, FAA restore — Fig. 11's 'no rewrite' curve."""
    return _build(DDFSIndex, NoRewriter, FAARestore, **kwargs)


def build_ddfs(**kwargs) -> BackupSystem:
    """DDFS: Bloom + locality cache, exact dedup (Zhu et al.)."""
    return _build(DDFSIndex, NoRewriter, FAARestore, **kwargs)


def build_exact(**kwargs) -> BackupSystem:
    """Uncached exact full index (upper-bound lookup traffic)."""
    return _build(ExactFullIndex, NoRewriter, FAARestore, **kwargs)


def build_binning(**kwargs) -> BackupSystem:
    """Extreme Binning (Bhagwat et al.), file-similarity, near-exact."""
    return _build(ExtremeBinningIndex, NoRewriter, FAARestore, **kwargs)


def build_sparse(**kwargs) -> BackupSystem:
    """Sparse Indexing (Lillibridge et al.), near-exact."""
    return _build(SparseIndex, NoRewriter, FAARestore, **kwargs)


def build_silo(**kwargs) -> BackupSystem:
    """SiLo (Xia et al.), similarity + locality, near-exact."""
    return _build(SiLoIndex, NoRewriter, FAARestore, **kwargs)


def build_blc(**kwargs) -> BackupSystem:
    """BLC (Meister et al.): recipe-page locality over a full index."""
    return _build(BLCIndex, NoRewriter, FAARestore, **kwargs)


def build_chunkstash(**kwargs) -> BackupSystem:
    """ChunkStash (Debnath et al.), flash-assisted exact dedup."""
    return _build(ChunkStashIndex, NoRewriter, FAARestore, **kwargs)


def build_greedy_capping(**kwargs) -> BackupSystem:
    """Submodular (greedy max-coverage) capping — the paper's ref [34]."""
    return _build(DDFSIndex, GreedyCappingRewriter, FAARestore, **kwargs)


def build_capping(**kwargs) -> BackupSystem:
    """Capping rewriting over an exact index, FAA restore (Lillibridge'13)."""
    return _build(DDFSIndex, CappingRewriter, FAARestore, **kwargs)


def build_cbr(**kwargs) -> BackupSystem:
    """Context-based rewriting (Kaczmarczyk'12), FAA restore."""
    return _build(DDFSIndex, CBRRewriter, FAARestore, **kwargs)


def build_cfl(**kwargs) -> BackupSystem:
    """CFL selective rewriting (Nam et al.), FAA restore."""
    return _build(DDFSIndex, CFLRewriter, FAARestore, **kwargs)


def build_fbw(**kwargs) -> BackupSystem:
    """FBW look-back-window rewriting (Cao'19), FAA restore."""
    return _build(DDFSIndex, FBWRewriter, FAARestore, **kwargs)


def build_alacc(**kwargs) -> BackupSystem:
    """The paper's 'ALACC' configuration: FBW rewriting + ALACC restore."""
    return _build(DDFSIndex, FBWRewriter, ALACCRestore, **kwargs)


def build_hidestore(**kwargs) -> BackupEngine:
    """HiDeStore (this paper)."""
    # Imported here: repro.core.hidestore itself imports repro.pipeline.base,
    # so a module-level import would be circular.
    from ..core.hidestore import HiDeStore

    kwargs.pop("index_kwargs", None)
    kwargs.pop("rewriter_kwargs", None)
    restorer_kwargs = kwargs.pop("restorer_kwargs", {})
    if restorer_kwargs:
        kwargs.setdefault("restorer", FAARestore(**restorer_kwargs))
    return HiDeStore(**kwargs)


SCHEMES: Dict[str, Callable[..., BackupEngine]] = {
    "baseline": build_baseline,
    "ddfs": build_ddfs,
    "exact": build_exact,
    "sparse": build_sparse,
    "binning": build_binning,
    "silo": build_silo,
    "capping": build_capping,
    "greedy-capping": build_greedy_capping,
    "chunkstash": build_chunkstash,
    "blc": build_blc,
    "cbr": build_cbr,
    "cfl": build_cfl,
    "fbw": build_fbw,
    "alacc": build_alacc,
    "hidestore": build_hidestore,
}


def build_scheme(name: str, **kwargs) -> BackupEngine:
    """Construct a named scheme (see :data:`SCHEMES` for the catalogue)."""
    try:
        factory = SCHEMES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
    return factory(**kwargs)
