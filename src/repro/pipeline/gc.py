"""Traditional expired-version deletion: mark, sweep, copy (the §5.5 foil).

A traditional deduplication store cannot simply drop an expired version's
chunks — other versions may reference them, and live/dead chunks are
interleaved inside containers (paper Fig. 2).  Deletion therefore costs:

1. **Mark**: scan *every retained recipe* to find which of the victim's
   chunks are still referenced.
2. **Sweep**: containers whose chunks are all dead are deleted outright.
3. **Copy GC**: containers mixing live and dead chunks are rewritten —
   live chunks copied into fresh containers — and **every retained recipe**
   referencing a moved chunk must be updated.

This module implements that machinery faithfully for
:class:`~repro.pipeline.system.BackupSystem`, so the §5.5 benchmark can
compare real costs instead of hand-waving: HiDeStore's deletion is O(dead
containers); this is O(retained recipes + rewritten containers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set

from ..errors import DeletionError
from ..storage.container import Container
from .system import BackupSystem


@dataclass
class GCStats:
    """Costs of one traditional deletion."""

    recipes_scanned: int = 0
    chunks_marked_dead: int = 0
    containers_deleted: int = 0
    containers_rewritten: int = 0
    bytes_copied: int = 0
    bytes_reclaimed: int = 0
    recipes_rewritten: int = 0
    mark_seconds: float = 0.0
    sweep_seconds: float = 0.0


class GCDeletionManager:
    """Mark-sweep-copy deletion for the traditional pipeline.

    Args:
        system: the backup system whose stores are garbage-collected.
        utilization_threshold: containers whose *live* utilisation falls
            below this after marking are rewritten (copy GC); above it the
            dead bytes are left in place as permanent fragmentation (what
            real systems do to bound GC cost — 1.0 rewrites any container
            with any dead byte).
    """

    def __init__(self, system: BackupSystem, utilization_threshold: float = 1.0) -> None:
        if not (0.0 <= utilization_threshold <= 1.0):
            raise DeletionError("utilization_threshold must be in [0, 1]")
        self.system = system
        self.utilization_threshold = utilization_threshold

    # ------------------------------------------------------------------
    def delete_version(self, version_id: int) -> GCStats:
        """Expire ``version_id`` the traditional way; returns the cost bill."""
        recipes = self.system.recipes
        containers = self.system.containers
        if version_id not in recipes:
            raise DeletionError(f"version {version_id} is not retained")
        stats = GCStats()

        # ---- Mark: victim chunks still referenced elsewhere stay live.
        started = time.perf_counter()
        victim = recipes.peek(version_id)
        victim_fps: Set[bytes] = {e.fingerprint for e in victim.entries}
        retained = [v for v in recipes.version_ids() if v != version_id]
        live: Set[bytes] = set()
        for other in retained:
            recipe = recipes.peek(other)
            stats.recipes_scanned += 1
            for entry in recipe.entries:
                if entry.fingerprint in victim_fps:
                    live.add(entry.fingerprint)
        dead = victim_fps - live
        stats.chunks_marked_dead = len(dead)
        stats.mark_seconds = time.perf_counter() - started

        # ---- Sweep + copy: walk containers referenced by the victim.
        started = time.perf_counter()
        victim_cids = {e.cid for e in victim.entries if e.cid > 0}
        relocations: Dict[bytes, int] = {}
        target: Container = None
        new_cids: List[int] = []
        for cid in sorted(victim_cids):
            if cid not in containers:
                continue  # already collected via an earlier deletion
            container = containers.peek(cid)
            held = set(container.fingerprints())
            dead_here = held & dead
            if not dead_here:
                continue  # fully live: untouched
            live_here = held - dead_here
            dead_bytes = sum(container.get(fp).size for fp in dead_here)
            live_bytes = container.used - dead_bytes
            if not live_here:
                # Fully dead: reclaim the container outright.
                stats.bytes_reclaimed += container.used
                containers.delete(cid)
                stats.containers_deleted += 1
                continue
            if live_bytes / container.capacity >= self.utilization_threshold:
                continue  # live-dense enough: tolerate the dead bytes
            # Copy GC: move live chunks to fresh containers.
            for fp in sorted(live_here):
                chunk = container.get_chunk(fp)
                if target is None or not target.fits(chunk.size):
                    if target is not None:
                        containers.write(target)
                    target = containers.allocate()
                    new_cids.append(target.container_id)
                target.add(chunk)
                relocations[fp] = target.container_id
                stats.bytes_copied += chunk.size
            stats.bytes_reclaimed += dead_bytes
            containers.delete(cid)
            stats.containers_rewritten += 1
        if target is not None and not target.is_empty:
            containers.write(target)

        # ---- Fix-up: every retained recipe referencing a moved chunk.
        if relocations:
            for other in retained:
                recipe = recipes.peek(other)
                changed = False
                for entry in recipe.entries:
                    new_cid = relocations.get(entry.fingerprint)
                    if new_cid is not None and entry.cid != new_cid:
                        entry.cid = new_cid
                        changed = True
                if changed:
                    recipes.write(recipe)
                    stats.recipes_rewritten += 1
            # The index must also learn the new locations.
            for fp, cid in relocations.items():
                from ..chunking.stream import Chunk

                size = 1  # size is irrelevant for location updates
                self.system.index.record(Chunk(fp, size), cid)

        recipes.delete(version_id)
        stats.sweep_seconds = time.perf_counter() - started
        return stats
