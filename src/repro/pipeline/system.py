"""The traditional deduplication backup system (Destor-equivalent pipeline).

:class:`BackupSystem` wires together the full paper pipeline —
chunking happens upstream (the system consumes :class:`BackupStream`s),
then **index → rewrite → store → recipe** per version, and
**recipe → restore algorithm → chunks** on the way back.  All compared
baselines (DDFS, Sparse Indexing, SiLo, with or without rewriting) are just
different constructor arguments; HiDeStore replaces this class entirely
(see :mod:`repro.core.hidestore`) because it changes the deduplication
process itself.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence

from ..chunking.stream import BackupStream, Chunk
from ..errors import StorageError
from ..index.base import FingerprintIndex
from ..restore.base import RestoreAlgorithm
from ..restore.faa import FAARestore
from ..rewriting.base import Rewriter
from ..rewriting.none import NoRewriter
from ..storage.container import Container
from ..storage.container_store import ContainerStore, MemoryContainerStore
from ..storage.io_model import IOStats
from ..storage.recipe import MemoryRecipeStore, Recipe, RecipeStore
from ..units import CONTAINER_SIZE
from ..reports import BackupReport, SystemReport
from .base import RestoreMixin


def _batches(items: Sequence, size: int) -> Iterator[Sequence]:
    if size <= 0:
        size = 1
    for start in range(0, len(items), size):
        yield items[start : start + size]


class BackupSystem(RestoreMixin):
    """A complete deduplicating backup store with pluggable policies.

    Args:
        index: fingerprint index (decides duplicate vs unique).
        rewriter: rewrite policy (defaults to no rewriting).
        container_store: sealed-container backend (defaults to in-memory).
        recipe_store: recipe backend (defaults to in-memory).
        restorer: default restore algorithm (defaults to FAA, as Destor's
            restore pipeline does for non-ALACC schemes).
        container_size: container payload capacity (4 MiB, paper default).
    """

    def __init__(
        self,
        index: FingerprintIndex,
        rewriter: Optional[Rewriter] = None,
        container_store: Optional[ContainerStore] = None,
        recipe_store: Optional[RecipeStore] = None,
        restorer: Optional[RestoreAlgorithm] = None,
        container_size: int = CONTAINER_SIZE,
    ) -> None:
        self.io = IOStats()
        self.index = index
        self.index.io_stats = self.io
        self.rewriter = rewriter if rewriter is not None else NoRewriter()
        self.containers = (
            container_store
            if container_store is not None
            else MemoryContainerStore(container_size, self.io)
        )
        self.containers.stats = self.io
        self.recipes = recipe_store if recipe_store is not None else MemoryRecipeStore(self.io)
        self.recipes.stats = self.io
        self.restorer = restorer if restorer is not None else FAARestore()
        self.container_size = container_size
        self._open: Optional[Container] = None
        self._next_version = 1
        self.report = SystemReport()

    # ------------------------------------------------------------------
    # Backup path
    # ------------------------------------------------------------------
    def backup(self, stream: BackupStream) -> BackupReport:
        """Deduplicate and store one backup version; returns its report."""
        started = time.perf_counter()
        version_id = self._next_version
        self._next_version += 1
        tag = stream.tag or f"v{version_id}"

        chunks: List[Chunk] = list(stream)
        self.index.begin_version(version_id, tag)
        self.rewriter.begin_version(version_id, tag)

        lookups_before = self.index.stats.disk_lookups

        # Phase 1: classify every chunk (batched by the index's segment size).
        lookups: List[Optional[int]] = []
        for batch in _batches(chunks, self.index.segment_size):
            lookups.extend(self.index.lookup_batch(batch))

        # Phase 2: rewrite policy may flip duplicates into writes.
        decisions = self.rewriter.decide(chunks, lookups)

        # Phase 3: store uniques/rewrites, build the recipe, teach the index.
        report = BackupReport(version_id, tag)
        recipe = Recipe(version_id, tag)
        recently_stored: Dict[bytes, int] = {}
        containers_before = len(self.containers)

        position = 0
        for batch in _batches(chunks, self.index.segment_size):
            for chunk in batch:
                looked_up = lookups[position]
                decision = decisions[position]
                position += 1
                if decision is None:
                    cid = recently_stored.get(chunk.fingerprint)
                    if cid is None:
                        cid = self._store_chunk(chunk)
                        recently_stored[chunk.fingerprint] = cid
                        report.unique_chunks += 1
                        report.stored_bytes += chunk.size
                        if looked_up is not None:
                            report.rewritten_chunks += 1
                    else:
                        report.duplicate_chunks += 1
                else:
                    cid = decision
                    report.duplicate_chunks += 1
                recipe.append(chunk.fingerprint, chunk.size, cid)
                self.index.record(chunk.drop_data(), cid)
                report.total_chunks += 1
                report.logical_bytes += chunk.size
            self.index.end_batch()

        self._flush_open_container()
        self.recipes.write(recipe)
        self.index.end_version()
        self.rewriter.end_version()

        report.disk_index_lookups = self.index.stats.disk_lookups - lookups_before
        report.containers_written = len(self.containers) - containers_before
        report.elapsed_seconds = time.perf_counter() - started

        self.report.versions += 1
        self.report.logical_bytes += report.logical_bytes
        self.report.stored_bytes += report.stored_bytes
        self.report.disk_index_lookups += report.disk_index_lookups
        self.report.index_memory_bytes = self.index.memory_bytes
        self.report.per_version.append(report)
        return report

    def _store_chunk(self, chunk: Chunk) -> int:
        if self._open is None:
            self._open = self.containers.allocate()
        if not self._open.fits(chunk.size):
            self.containers.write(self._open)
            self._open = self.containers.allocate()
        if chunk.size > self._open.capacity:
            raise StorageError(
                f"chunk of {chunk.size} B exceeds container capacity "
                f"{self._open.capacity} B"
            )
        self._open.add(chunk)
        return self._open.container_id

    def _flush_open_container(self) -> None:
        if self._open is not None and not self._open.is_empty:
            self.containers.write(self._open)
        self._open = None

    # ------------------------------------------------------------------
    # Restore path: inherited from RestoreMixin (the default hooks — read
    # entries verbatim, fetch from the archival store — are exactly the
    # traditional pipeline's behaviour).
    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dedup_ratio(self) -> float:
        return self.report.dedup_ratio

    def version_ids(self) -> List[int]:
        return self.recipes.version_ids()

    def stored_bytes(self) -> int:
        """Physical payload bytes currently held in containers."""
        return self.containers.stored_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BackupSystem(index={type(self.index).__name__}, "
            f"rewriter={type(self.rewriter).__name__}, "
            f"versions={self.report.versions}, "
            f"dedup_ratio={self.dedup_ratio:.3f})"
        )
