"""BLC — Block Locality Caching (Meister, Kaiser & Brinkmann, SYSTOR'13).

The locality information DDFS prefetches (container metadata in *write*
order) goes stale as backups evolve.  BLC instead exploits the locality of
the **most recent backup's recipe** (its "block index"), which is always
up to date: the cache is filled with fixed-size *pages* of the previous
recipe, fetched on demand.  An incoming chunk is looked up in the cached
pages first; on a miss the full on-disk index is probed (billed), and the
hit's surrounding previous-recipe page is faulted in — subsequent chunks of
the stream then hit the cache because the new backup mostly replays the
previous one's order.

Exact deduplication; compared with DDFS the cache tracks the *logical*
(recipe) order rather than the physical (container) order, so it stays
effective as fragmentation grows — and conceptually it is the closest
published ancestor of HiDeStore's T1 prefetch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..chunking.stream import Chunk
from ..errors import IndexError_
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex
from .bloom import BloomFilter


class BLCIndex(FingerprintIndex):
    """Block (recipe-page) locality caching over a full on-disk index.

    Like DDFS, a Bloom filter (summary vector) screens never-seen
    fingerprints so unique chunks cost no disk probe.

    Args:
        page_entries: chunks per cached recipe page.
        cache_pages: page cache capacity (LRU).
        expected_chunks: Bloom filter sizing.
    """

    segment_size = 1

    def __init__(
        self,
        page_entries: int = 512,
        cache_pages: int = 64,
        expected_chunks: int = 1_000_000,
        io_stats: Optional[IOStats] = None,
    ) -> None:
        super().__init__(io_stats)
        if page_entries <= 0 or cache_pages <= 0:
            raise IndexError_("page_entries and cache_pages must be positive")
        self.page_entries = page_entries
        self.cache_pages = cache_pages
        self.bloom = BloomFilter(expected_chunks)
        # On-disk structures (modelled).
        self._table: Dict[bytes, int] = {}  # full index: fp -> cid
        #: previous backup's recipe as pages: page id -> [(fp, cid)].
        self._previous_pages: List[List[Tuple[bytes, int]]] = []
        self._page_of_fp: Dict[bytes, int] = {}
        # Current backup's recipe being built (becomes previous at end).
        self._current_recipe: List[Tuple[bytes, int]] = []
        # RAM: LRU of previous-recipe pages + the fingerprints they expose.
        self._cache: "OrderedDict[int, None]" = OrderedDict()
        self._cached_fps: Dict[bytes, Tuple[int, int]] = {}  # fp -> (page, cid)

    # ------------------------------------------------------------------
    def begin_version(self, version_id: int, tag: str = "") -> None:
        self._current_recipe = []

    def end_version(self) -> None:
        # The just-written backup becomes the locality source for the next.
        self._previous_pages = [
            self._current_recipe[i : i + self.page_entries]
            for i in range(0, len(self._current_recipe), self.page_entries)
        ]
        self._page_of_fp = {}
        for page_id, page in enumerate(self._previous_pages):
            for fp, _cid in page:
                self._page_of_fp.setdefault(fp, page_id)
        self._current_recipe = []
        self._cache.clear()
        self._cached_fps.clear()

    # ------------------------------------------------------------------
    def _fault_page(self, page_id: int) -> None:
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            return
        self._cache[page_id] = None
        for fp, cid in self._previous_pages[page_id]:
            self._cached_fps[fp] = (page_id, cid)
        while len(self._cache) > self.cache_pages:
            evicted, _ = self._cache.popitem(last=False)
            for fp, _cid in self._previous_pages[evicted]:
                if self._cached_fps.get(fp, (None,))[0] == evicted:
                    del self._cached_fps[fp]

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        results: List[Optional[int]] = []
        for chunk in chunks:
            fp = chunk.fingerprint
            cached = self._cached_fps.get(fp)
            if cached is not None:
                self._cache.move_to_end(cached[0])
                self.stats.cache_hits += 1
                self.stats.note_classification(True)
                results.append(cached[1])
                continue
            # Summary vector: definitely-new chunks skip the disk.
            if fp not in self.bloom:
                self.stats.note_classification(False)
                results.append(None)
                continue
            # Miss: probe the full on-disk index (billed).
            self._bill_disk_lookup()
            cid = self._table.get(fp)
            if cid is None:
                self.stats.note_classification(False)
                results.append(None)
                continue
            # Fault in the previous-recipe page around this chunk, if any —
            # the stream will likely continue in that page's order.
            page_id = self._page_of_fp.get(fp)
            if page_id is not None:
                self._fault_page(page_id)
            self.stats.note_classification(True)
            results.append(cid)
        return results

    def record(self, chunk: Chunk, cid: int) -> None:
        if chunk.fingerprint not in self._table:
            self.bloom.add(chunk.fingerprint)
        self._table[chunk.fingerprint] = cid
        self._current_recipe.append((chunk.fingerprint, cid))

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return self.bloom.size_bytes + len(self._cached_fps) * RECIPE_ENTRY_SIZE

    @property
    def table_bytes(self) -> int:
        """Modelled on-disk full-index size."""
        return len(self._table) * RECIPE_ENTRY_SIZE

    def __len__(self) -> int:
        return len(self._table)
