"""A classic partitioned Bloom filter (DDFS's in-memory "summary vector").

Zhu et al. use a Bloom filter so that lookups for *unique* chunks almost
never touch the on-disk index: no false negatives, tunable false-positive
rate.  We implement k independent hash functions by slicing the (already
uniformly distributed) fingerprint and mixing with per-function salts, over a
single bit array backed by a ``bytearray``.
"""

from __future__ import annotations

import math

from ..errors import IndexError_


def _mix(value: int, salt: int) -> int:
    """Cheap 64-bit mix (splitmix64 finalizer) of value with a salt."""
    z = (value + salt * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class BloomFilter:
    """Fixed-size Bloom filter over byte-string keys.

    Args:
        expected_items: sizing target.
        false_positive_rate: target FP rate at ``expected_items`` insertions.
    """

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01) -> None:
        if expected_items <= 0:
            raise IndexError_("expected_items must be positive")
        if not (0.0 < false_positive_rate < 1.0):
            raise IndexError_("false_positive_rate must be in (0, 1)")
        bits = int(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))
        self.num_bits = max(64, bits)
        self.num_hashes = max(1, round(self.num_bits / expected_items * math.log(2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate

    def _positions(self, key: bytes):
        base = int.from_bytes(key[:8].ljust(8, b"\x00"), "big")
        extra = int.from_bytes(key[8:16].ljust(8, b"\x00"), "big")
        for i in range(self.num_hashes):
            yield _mix(base ^ extra, i + 1) % self.num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def __contains__(self, key: bytes) -> bool:
        return all(self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key))

    @property
    def size_bytes(self) -> int:
        """Resident size of the bit array."""
        return len(self._bits)

    @property
    def estimated_fp_rate(self) -> float:
        """Theoretical FP rate at the current fill level."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
