"""Fingerprint-index interface shared by every deduplication scheme.

An index answers, for each chunk of a backup stream *in order*: is this a
duplicate, and if so in which container does it already live?  Schemes differ
wildly in how they answer (exact on-disk tables, Bloom filters + locality
caches, sampled sparse indexes, similarity hashes), so the interface exposes:

* ``segment_size`` — how many chunks the scheme wants to see at once.
  Streaming schemes (DDFS, exact) use 1; batch schemes (Sparse Indexing,
  SiLo) deduplicate whole segments against chosen "champions".
* :meth:`lookup_batch` — classify a batch; ``None`` means "treat as unique".
  Near-exact schemes may return ``None`` for true duplicates — that is
  precisely where their deduplication ratio loss comes from.
* :meth:`record` — called for **every** chunk afterwards with the container
  the pipeline finally placed it in (new container for uniques/rewrites, the
  looked-up container otherwise), so the index can learn locations.

Disk-probe accounting: every probe that would hit the platter in the real
system (full-index lookup, champion-manifest load, similarity-block load)
increments ``disk_lookups`` — the paper's Figure 9 "lookup requests" metric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..chunking.stream import Chunk
from ..storage.io_model import IOStats


@dataclass
class IndexStats:
    """Counters every index keeps; the source of Figures 9 and 10."""

    lookups: int = 0  # chunks classified
    cache_hits: int = 0  # answered from memory
    disk_lookups: int = 0  # on-disk probes (Fig. 9 numerator)
    duplicates: int = 0
    uniques: int = 0

    def note_classification(self, duplicate: bool) -> None:
        self.lookups += 1
        if duplicate:
            self.duplicates += 1
        else:
            self.uniques += 1


class FingerprintIndex(ABC):
    """Base class for all fingerprint indexes."""

    #: Chunks per lookup batch; subclasses override (1 = streaming).
    segment_size: int = 1

    def __init__(self, io_stats: Optional[IOStats] = None) -> None:
        self.stats = IndexStats()
        self.io_stats = io_stats if io_stats is not None else IOStats()

    # ------------------------------------------------------------------
    def begin_version(self, version_id: int, tag: str = "") -> None:
        """Hook invoked before the first chunk of a version. Optional."""

    @abstractmethod
    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        """Classify a batch of chunks in stream order.

        Returns one element per chunk: the container ID the duplicate lives
        in, or ``None`` for chunks to be stored as unique.
        """

    @abstractmethod
    def record(self, chunk: Chunk, cid: int) -> None:
        """Learn the final location of a chunk the pipeline just placed."""

    def end_batch(self) -> None:
        """Hook invoked after every batch's :meth:`record` calls. Optional.

        Batch schemes use it to seal the segment they just deduplicated
        (e.g. Sparse Indexing writes the segment's manifest and hooks here).
        """

    def end_version(self) -> None:
        """Hook invoked after the last chunk of a version. Optional."""

    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def memory_bytes(self) -> int:
        """Resident bytes of the *persistent* in-memory index structures.

        This is Figure 10's "index table overhead" numerator: Bloom filters,
        locality caches, sparse hook tables, similarity tables.  Transient
        per-version scratch space does not count (matching how the paper
        credits HiDeStore with near-zero index overhead).
        """

    def _bill_disk_lookup(self, count: int = 1) -> None:
        self.stats.disk_lookups += count
        self.io_stats.note_index_lookup(count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(lookups={self.stats.lookups}, "
            f"disk={self.stats.disk_lookups}, mem={self.memory_bytes})"
        )
