"""Sparse Indexing (Lillibridge et al., FAST'09) — sampled hooks + champions.

The stream is cut into multi-megabyte *segments*.  Only a sampled subset of
each segment's fingerprints ("hooks", 1-in-``sample_rate``) is kept in RAM,
mapping hook → the manifests (past segments) that contained it.  A new
segment is deduplicated only against a handful of *champion* manifests —
past segments sharing the most hooks — each of whose manifest loads costs
one disk probe.  Chunks the champions don't cover are stored again even if
they exist elsewhere: that bounded miss is the scheme's deduplication-ratio
loss in Figure 8, in exchange for a tiny RAM footprint in Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import IndexError_
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex


class SparseIndex(FingerprintIndex):
    """Near-exact deduplication via sampling and champion manifests.

    Args:
        segment_chunks: chunks per segment (the batch unit).
        sample_rate: 1-in-N hook sampling (the paper's experiments use up to
            128:1); sampling tests the fingerprint's low bits so it is
            content-derived and deterministic.
        max_champions: manifests loaded per segment (disk probes per segment).
        hook_capacity: max manifest IDs remembered per hook (FIFO of most
            recent, as in the paper).
    """

    def __init__(
        self,
        segment_chunks: int = 1024,
        sample_rate: int = 64,
        max_champions: int = 8,
        hook_capacity: int = 4,
        io_stats: Optional[IOStats] = None,
    ) -> None:
        super().__init__(io_stats)
        if segment_chunks <= 0 or sample_rate <= 0 or max_champions <= 0:
            raise IndexError_("segment_chunks, sample_rate, max_champions must be positive")
        self.segment_size = segment_chunks
        self.sample_rate = sample_rate
        self.max_champions = max_champions
        self.hook_capacity = hook_capacity
        # RAM: hook fingerprint -> recent manifest ids.
        self._sparse: Dict[bytes, List[int]] = {}
        # Disk (modelled): manifest id -> {fp: cid}.
        self._manifests: Dict[int, Dict[bytes, int]] = {}
        self._next_manifest_id = 1
        self._current_manifest: Dict[bytes, int] = {}

    # ------------------------------------------------------------------
    def _is_hook(self, fingerprint: bytes) -> bool:
        # Fingerprints are uniform, so low bits give an unbiased sample.
        return int.from_bytes(fingerprint[-4:], "big") % self.sample_rate == 0

    def _choose_champions(self, hooks: Sequence[bytes]) -> List[int]:
        """Rank candidate manifests by hook overlap; greedy top-k."""
        votes: Dict[int, int] = {}
        for hook in hooks:
            for manifest_id in self._sparse.get(hook, ()):
                votes[manifest_id] = votes.get(manifest_id, 0) + 1
        # Highest vote count first; newest manifest breaks ties (better
        # locality with the most recent backup).
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], -kv[0]))
        return [manifest_id for manifest_id, _ in ranked[: self.max_champions]]

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        hooks = [c.fingerprint for c in chunks if self._is_hook(c.fingerprint)]
        champions = self._choose_champions(hooks)
        # Loading each champion manifest is one random disk read.
        known: Dict[bytes, int] = {}
        for manifest_id in champions:
            self._bill_disk_lookup()
            known.update(self._manifests[manifest_id])

        results: List[Optional[int]] = []
        for chunk in chunks:
            cid = known.get(chunk.fingerprint)
            if cid is not None:
                self.stats.cache_hits += 1
                self.stats.note_classification(True)
                results.append(cid)
            else:
                # Not covered by any champion: treated as unique (this is the
                # scheme's bounded dedup-ratio loss).  Intra-segment repeats
                # are absorbed by the pipeline's write-buffer dedup.
                self.stats.note_classification(False)
                results.append(None)
        return results

    def record(self, chunk: Chunk, cid: int) -> None:
        self._current_manifest[chunk.fingerprint] = cid

    def end_batch(self) -> None:
        """Seal the just-deduplicated segment into a manifest + hooks."""
        if not self._current_manifest:
            return
        manifest_id = self._next_manifest_id
        self._next_manifest_id += 1
        self._manifests[manifest_id] = dict(self._current_manifest)
        for fp in self._current_manifest:
            if self._is_hook(fp):
                entry = self._sparse.setdefault(fp, [])
                entry.append(manifest_id)
                if len(entry) > self.hook_capacity:
                    del entry[0]
        self._current_manifest.clear()

    def end_version(self) -> None:
        self.end_batch()

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        # Each hook entry: 20-byte fp key + 8 bytes per manifest reference.
        refs = sum(len(v) for v in self._sparse.values())
        return len(self._sparse) * 20 + refs * 8

    @property
    def table_bytes(self) -> int:
        """Modelled on-disk manifest bytes."""
        entries = sum(len(m) for m in self._manifests.values())
        return entries * RECIPE_ENTRY_SIZE
