"""Fingerprint indexes: the deduplication decision layer.

Implements the schemes the paper compares against (DDFS, Sparse Indexing,
SiLo) plus an exact full index; HiDeStore's double-hash fingerprint cache
lives in :mod:`repro.core` because it is the paper's contribution rather
than a substrate.
"""

from .base import FingerprintIndex, IndexStats
from .blc import BLCIndex
from .bloom import BloomFilter
from .chunkstash import ChunkStashIndex
from .ddfs import DDFSIndex
from .extreme_binning import ExtremeBinningIndex
from .full_index import ExactFullIndex
from .silo import SiLoIndex
from .sparse import SparseIndex

__all__ = [
    "BLCIndex",
    "BloomFilter",
    "ChunkStashIndex",
    "DDFSIndex",
    "ExtremeBinningIndex",
    "ExactFullIndex",
    "FingerprintIndex",
    "IndexStats",
    "SiLoIndex",
    "SparseIndex",
    "make_index",
]

_INDEXES = {
    "exact": ExactFullIndex,
    "ddfs": DDFSIndex,
    "blc": BLCIndex,
    "binning": ExtremeBinningIndex,
    "chunkstash": ChunkStashIndex,
    "sparse": SparseIndex,
    "silo": SiLoIndex,
}


def make_index(name: str, **kwargs) -> FingerprintIndex:
    """Construct an index by name (``exact``/``ddfs``/``sparse``/``silo``)."""
    try:
        cls = _INDEXES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; choose from {sorted(_INDEXES)}"
        ) from None
    return cls(**kwargs)
