"""SiLo (Xia et al., ATC'11) — joint similarity & locality deduplication.

SiLo splits the stream into small *segments* and packs consecutive segments
into large *blocks*.  Similarity: each segment is represented in RAM by its
minimum fingerprint only; a match in the similarity hash table (SHTable)
pulls the matching segment's whole *block* from disk (one probe) into a
read cache.  Locality: because the block carries the segment's neighbours,
near-duplicate segments that the similarity sample misses are still found in
the cached block.  The result is a tiny RAM index (one entry per segment)
with near-exact deduplication — the middle ground of Figures 8-10.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import IndexError_
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex


class SiLoIndex(FingerprintIndex):
    """Similarity-and-locality index.

    Args:
        segment_chunks: chunks per similarity segment (batch unit).
        segments_per_block: segments packed into one locality block.
        cache_blocks: read-cache capacity in blocks.
    """

    def __init__(
        self,
        segment_chunks: int = 256,
        segments_per_block: int = 8,
        cache_blocks: int = 16,
        io_stats: Optional[IOStats] = None,
    ) -> None:
        super().__init__(io_stats)
        if segment_chunks <= 0 or segments_per_block <= 0 or cache_blocks <= 0:
            raise IndexError_("SiLo parameters must be positive")
        self.segment_size = segment_chunks
        self.segments_per_block = segments_per_block
        self.cache_blocks = cache_blocks
        # RAM: similarity table, min-fp -> block id.
        self._shtable: Dict[bytes, int] = {}
        # Disk (modelled): block id -> {fp: cid}.
        self._blocks: Dict[int, Dict[bytes, int]] = {}
        self._next_block_id = 1
        # Write buffer: the block currently being filled.
        self._open_block: Dict[bytes, int] = {}
        self._open_block_reps: List[bytes] = []
        self._open_segment: Dict[bytes, int] = {}
        # Read cache: block id -> fp map, LRU.
        self._cache: "OrderedDict[int, Dict[bytes, int]]" = OrderedDict()

    # ------------------------------------------------------------------
    def _cache_block(self, block_id: int) -> Dict[bytes, int]:
        if block_id in self._cache:
            self._cache.move_to_end(block_id)
            return self._cache[block_id]
        self._bill_disk_lookup()
        block = self._blocks[block_id]
        self._cache[block_id] = block
        while len(self._cache) > self.cache_blocks:
            self._cache.popitem(last=False)
        return block

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        if not chunks:
            return []
        representative = min(c.fingerprint for c in chunks)
        block_id = self._shtable.get(representative)
        if block_id is not None and block_id in self._blocks:
            self._cache_block(block_id)

        results: List[Optional[int]] = []
        for chunk in chunks:
            fp = chunk.fingerprint
            cid = self._open_block.get(fp)
            if cid is None:
                for cached in reversed(self._cache.values()):
                    cid = cached.get(fp)
                    if cid is not None:
                        break
            if cid is not None:
                self.stats.cache_hits += 1
                self.stats.note_classification(True)
                results.append(cid)
            else:
                self.stats.note_classification(False)
                results.append(None)
        return results

    def record(self, chunk: Chunk, cid: int) -> None:
        self._open_segment[chunk.fingerprint] = cid

    def end_batch(self) -> None:
        if not self._open_segment:
            return
        # The representative is recomputed over the recorded segment — the
        # same chunk set lookup_batch sampled, so the same minimum.
        rep = min(self._open_segment)
        self._open_block.update(self._open_segment)
        self._open_block_reps.append(rep)
        self._open_segment = {}
        if len(self._open_block_reps) >= self.segments_per_block:
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._open_block:
            return
        block_id = self._next_block_id
        self._next_block_id += 1
        self._blocks[block_id] = dict(self._open_block)
        for rep in self._open_block_reps:
            self._shtable[rep] = block_id
        self._open_block = {}
        self._open_block_reps = []

    def end_version(self) -> None:
        self.end_batch()
        self._flush_block()

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        # SHTable: 20-byte representative fingerprint + 4-byte block id.
        return len(self._shtable) * 24

    @property
    def table_bytes(self) -> int:
        """Modelled on-disk block-manifest bytes."""
        entries = sum(len(b) for b in self._blocks.values())
        return entries * RECIPE_ENTRY_SIZE
