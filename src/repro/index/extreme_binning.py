"""Extreme Binning (Bhagwat et al., MASCOTS'09) — file-similarity indexing.

Referenced by the paper's related work (§6) for workloads with poor
stream locality.  The RAM-resident *primary index* holds one entry per file:
the file's representative chunk ID (its minimum fingerprint, by Broder's
theorem a good similarity proxy) plus the whole-file hash and a pointer to a
disk-resident *bin* of the file's chunk fingerprints.  An incoming file is
deduplicated against exactly one bin — the one its representative selects —
loaded with a single disk access; the bin is then updated with the file's
new chunks.  Whole-file duplicates short-circuit via the file hash.

Backup streams here have no file boundaries, so the index bins at its batch
(segment) granularity, the same stand-in SiLo uses for its segments.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import IndexError_
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex


class ExtremeBinningIndex(FingerprintIndex):
    """One-RAM-entry-per-file similarity index with disk bins.

    Args:
        segment_chunks: chunks per "file" (batch unit).
    """

    def __init__(self, segment_chunks: int = 256, io_stats: Optional[IOStats] = None) -> None:
        super().__init__(io_stats)
        if segment_chunks <= 0:
            raise IndexError_("segment_chunks must be positive")
        self.segment_size = segment_chunks
        # RAM primary index: representative fp -> (whole-file hash, bin id).
        self._primary: Dict[bytes, List] = {}
        # Disk bins: bin id -> {fp: cid}.
        self._bins: Dict[int, Dict[bytes, int]] = {}
        self._next_bin_id = 1
        # State carried from lookup to record/end_batch.
        self._pending_rep: Optional[bytes] = None
        self._pending_hash: Optional[bytes] = None
        self._pending_bin: Optional[int] = None
        self._segment: Dict[bytes, int] = {}
        self.whole_file_hits = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _whole_hash(chunks: Sequence[Chunk]) -> bytes:
        digest = hashlib.sha1()
        for chunk in chunks:
            digest.update(chunk.fingerprint)
        return digest.digest()

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        if not chunks:
            return []
        representative = min(c.fingerprint for c in chunks)
        whole = self._whole_hash(chunks)
        self._pending_rep = representative
        self._pending_hash = whole
        self._pending_bin = None

        known: Dict[bytes, int] = {}
        entry = self._primary.get(representative)
        if entry is not None:
            stored_hash, bin_id = entry
            self._pending_bin = bin_id
            # One disk access loads the bin (even for whole-file duplicates
            # the chunk locations must be read for the recipe).
            self._bill_disk_lookup()
            known = self._bins[bin_id]
            if stored_hash == whole:
                self.whole_file_hits += 1

        results: List[Optional[int]] = []
        for chunk in chunks:
            cid = known.get(chunk.fingerprint)
            if cid is not None:
                self.stats.cache_hits += 1
                self.stats.note_classification(True)
                results.append(cid)
            else:
                self.stats.note_classification(False)
                results.append(None)
        return results

    def record(self, chunk: Chunk, cid: int) -> None:
        self._segment[chunk.fingerprint] = cid

    def end_batch(self) -> None:
        if not self._segment:
            return
        rep = self._pending_rep if self._pending_rep is not None else min(self._segment)
        if self._pending_bin is not None:
            # Merge the file's chunks into the existing bin (bin update).
            self._bins[self._pending_bin].update(self._segment)
            bin_id = self._pending_bin
        else:
            bin_id = self._next_bin_id
            self._next_bin_id += 1
            self._bins[bin_id] = dict(self._segment)
        self._primary[rep] = [self._pending_hash, bin_id]
        self._segment = {}
        self._pending_rep = None
        self._pending_hash = None
        self._pending_bin = None

    def end_version(self) -> None:
        self.end_batch()

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        # Primary index: 20-byte rep + 20-byte whole hash + 4-byte bin id.
        return len(self._primary) * 44

    @property
    def table_bytes(self) -> int:
        """Modelled on-disk bin bytes."""
        return sum(len(b) for b in self._bins.values()) * RECIPE_ENTRY_SIZE
