"""ChunkStash (Debnath, Sengupta & Li, ATC'10) — flash-assisted indexing.

Referenced in the paper's related work (§6) as the "use SSD instead of
disk" answer to the index bottleneck.  The design reproduced here:

* chunk metadata lives in a log on **flash** (not disk): reads are random
  but cheap, writes are sequential log appends;
* RAM holds a *compact* hash table: per key only a small **signature**
  (2 bytes here) plus a 4-byte pointer into the flash log — an order of
  magnitude smaller than a full in-RAM index;
* a lookup whose signature is absent is definitely new (no I/O at all);
  a signature match goes to flash to confirm (rarely a false match).

Accounting: flash probes are counted in ``stats.cache_hits``' sibling
counter :attr:`flash_lookups` and in IOStats' generic index-lookup channel
(scaled would be unfair — the paper's Fig. 9 counts *disk* lookups, which
ChunkStash by construction has none of), so ``stats.disk_lookups`` stays 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import IndexError_
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex


class ChunkStashIndex(FingerprintIndex):
    """Compact RAM signatures + flash-resident metadata log.

    Args:
        signature_bytes: signature width kept in RAM per key (2 in the
            paper; more bytes → fewer false flash probes).
    """

    segment_size = 1

    def __init__(self, signature_bytes: int = 2, io_stats: Optional[IOStats] = None) -> None:
        super().__init__(io_stats)
        if not (1 <= signature_bytes <= 8):
            raise IndexError_("signature_bytes must be within 1..8")
        self.signature_bytes = signature_bytes
        # RAM: signature -> flash-log slots holding full entries.  Signature
        # collisions chain (several keys can share a signature).
        self._signatures: Dict[bytes, List[int]] = {}
        # Flash (modelled): append-only metadata log of (fp, cid).
        self._flash_log: List[tuple] = []
        self.flash_lookups = 0
        self.flash_false_probes = 0

    # ------------------------------------------------------------------
    def _signature(self, fingerprint: bytes) -> bytes:
        return fingerprint[: self.signature_bytes]

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        results: List[Optional[int]] = []
        for chunk in chunks:
            slots = self._signatures.get(self._signature(chunk.fingerprint))
            cid: Optional[int] = None
            if slots:
                # Signature hit: confirm against the flash log (one flash
                # read per candidate slot; usually exactly one).
                for slot in slots:
                    self.flash_lookups += 1
                    fp, stored_cid = self._flash_log[slot]
                    if fp == chunk.fingerprint:
                        cid = stored_cid
                        break
                else:
                    self.flash_false_probes += 1
            self.stats.note_classification(cid is not None)
            results.append(cid)
        return results

    def record(self, chunk: Chunk, cid: int) -> None:
        signature = self._signature(chunk.fingerprint)
        slots = self._signatures.get(signature)
        if slots:
            for i, slot in enumerate(slots):
                fp, stored_cid = self._flash_log[slot]
                if fp == chunk.fingerprint:
                    if stored_cid != cid:  # rewritten copy: append new entry
                        self._flash_log.append((chunk.fingerprint, cid))
                        slots[i] = len(self._flash_log) - 1
                    return
        self._flash_log.append((chunk.fingerprint, cid))
        self._signatures.setdefault(signature, []).append(len(self._flash_log) - 1)

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        # Per key: signature + 4-byte flash pointer (the compact table).
        entries = sum(len(slots) for slots in self._signatures.values())
        return entries * (self.signature_bytes + 4)

    @property
    def flash_bytes(self) -> int:
        """Modelled flash-log size (full 28-byte entries live on flash)."""
        return len(self._flash_log) * RECIPE_ENTRY_SIZE

    def __len__(self) -> int:
        return len(self._flash_log)
