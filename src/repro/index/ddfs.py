"""DDFS-style index: Bloom filter + full on-disk index + locality cache.

Zhu et al. (FAST'08) attack the disk-index bottleneck with three mechanisms,
all reproduced here:

1. A **summary vector** (Bloom filter) answers most *unique*-chunk lookups
   in memory — no disk probe when the filter says "never seen".
2. **Stream-informed segment layout**: chunk metadata is stored per container
   in stream order, so
3. **Locality-preserving caching**: when a lookup does go to disk and finds
   the chunk, the whole container's fingerprint metadata is prefetched into
   an LRU cache; subsequent chunks of the stream then hit memory.

Exact deduplication (no ratio loss); the price is the biggest resident index
footprint in Figure 10 and disk probes that grow with fragmentation in
Figure 9.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..errors import IndexError_
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex
from .bloom import BloomFilter


class DDFSIndex(FingerprintIndex):
    """Bloom filter + locality-preserving container-metadata cache.

    Args:
        expected_chunks: Bloom filter sizing (unique chunks expected over the
            whole experiment).
        cache_containers: LRU capacity in *containers* of prefetched
            fingerprint metadata.
        false_positive_rate: Bloom target FP rate.
    """

    segment_size = 1

    def __init__(
        self,
        expected_chunks: int = 1_000_000,
        cache_containers: int = 64,
        false_positive_rate: float = 0.01,
        io_stats: Optional[IOStats] = None,
    ) -> None:
        super().__init__(io_stats)
        if cache_containers <= 0:
            raise IndexError_("cache_containers must be positive")
        self.bloom = BloomFilter(expected_chunks, false_positive_rate)
        self.cache_containers = cache_containers
        # On-disk structures (modelled): fp -> cid, and per-container metadata.
        self._table: Dict[bytes, int] = {}
        self._container_fps: Dict[int, List[bytes]] = {}
        # In-memory locality cache: cid -> set of fingerprints, LRU order.
        self._cache: "OrderedDict[int, Dict[bytes, None]]" = OrderedDict()
        self._cached_fp_to_cid: Dict[bytes, int] = {}

    # ------------------------------------------------------------------
    def _cache_insert(self, cid: int, fingerprints: Sequence[bytes]) -> None:
        if cid in self._cache:
            self._cache.move_to_end(cid)
            return
        self._cache[cid] = {fp: None for fp in fingerprints}
        for fp in fingerprints:
            self._cached_fp_to_cid[fp] = cid
        while len(self._cache) > self.cache_containers:
            old_cid, fps = self._cache.popitem(last=False)
            for fp in fps:
                if self._cached_fp_to_cid.get(fp) == old_cid:
                    del self._cached_fp_to_cid[fp]

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        results: List[Optional[int]] = []
        for chunk in chunks:
            results.append(self._lookup_one(chunk))
        return results

    def _lookup_one(self, chunk: Chunk) -> Optional[int]:
        fp = chunk.fingerprint
        # 1. Locality cache.
        cached = self._cached_fp_to_cid.get(fp)
        if cached is not None:
            self._cache.move_to_end(cached)
            self.stats.cache_hits += 1
            self.stats.note_classification(True)
            return cached
        # 2. Summary vector: "definitely new" skips the disk.
        if fp not in self.bloom:
            self.stats.note_classification(False)
            return None
        # 3. On-disk full index (billed), possible Bloom false positive.
        self._bill_disk_lookup()
        cid = self._table.get(fp)
        if cid is None:
            self.stats.note_classification(False)
            return None
        # Locality prefetch: pull the whole container's metadata into cache.
        self._cache_insert(cid, self._container_fps.get(cid, [fp]))
        self.stats.note_classification(True)
        return cid

    def record(self, chunk: Chunk, cid: int) -> None:
        fp = chunk.fingerprint
        previous = self._table.get(fp)
        if previous is None:
            self.bloom.add(fp)
        if previous != cid:
            self._table[fp] = cid
            self._container_fps.setdefault(cid, []).append(fp)
        # The just-written container's metadata is naturally stream-local;
        # keep it hot so intra-version duplicates hit memory.
        if cid in self._cache:
            self._cache[cid][fp] = None
            self._cached_fp_to_cid[fp] = cid
        else:
            self._cache_insert(cid, [fp])

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        cache_entries = sum(len(fps) for fps in self._cache.values())
        return self.bloom.size_bytes + cache_entries * RECIPE_ENTRY_SIZE

    @property
    def table_bytes(self) -> int:
        """Modelled on-disk full-index size."""
        return len(self._table) * RECIPE_ENTRY_SIZE

    def __len__(self) -> int:
        return len(self._table)
