"""Exact full fingerprint index — the correctness yardstick.

Every fingerprint ever stored maps to its container.  In a real system this
table lives on disk and every miss of whatever cache sits in front of it is a
random I/O; here the table is a dict, but *every* probe is billed as a disk
lookup (there is no cache in front), which makes this the worst-case curve in
Figure 9 and the highest bar in Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..chunking.stream import Chunk
from ..storage.io_model import IOStats
from ..units import RECIPE_ENTRY_SIZE
from .base import FingerprintIndex


class ExactFullIndex(FingerprintIndex):
    """Exact deduplication with a full (modelled on-disk) index, no cache."""

    segment_size = 1

    def __init__(self, io_stats: Optional[IOStats] = None) -> None:
        super().__init__(io_stats)
        self._table: Dict[bytes, int] = {}

    def lookup_batch(self, chunks: Sequence[Chunk]) -> List[Optional[int]]:
        results: List[Optional[int]] = []
        for chunk in chunks:
            self._bill_disk_lookup()
            cid = self._table.get(chunk.fingerprint)
            self.stats.note_classification(cid is not None)
            results.append(cid)
        return results

    def record(self, chunk: Chunk, cid: int) -> None:
        self._table[chunk.fingerprint] = cid

    @property
    def memory_bytes(self) -> int:
        # The table itself is on disk; only negligible bookkeeping is resident.
        return 0

    @property
    def table_bytes(self) -> int:
        """On-disk size of the full table (one 28-byte entry per unique chunk)."""
        return len(self._table) * RECIPE_ENTRY_SIZE

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._table
