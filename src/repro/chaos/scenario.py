"""Declarative chaos scenarios: JSON spec → deterministic op schedule.

A scenario describes a fleet-scale workload the way an operator would —
tenant population (count / size skew), an op mix per phase, and the
faults to inject — without saying *when* anything happens.  This module
turns that description into a fully materialised :class:`Schedule`:
every operation pinned to a tenant, every fault pinned to an op site,
all drawn from one seeded :class:`random.Random`.  The same spec + seed
always compiles to the same schedule (``Schedule.digest`` proves it), so
a chaos run that found a bug is re-runnable evidence, not an anecdote.

Spec shape (all sizes in KiB; every field below ``seed`` has a default)::

    {
      "name": "mixed_churn",
      "seed": 1234,
      "clients": 4,
      "tenants": {
        "small": {"count": 6, "files": 3, "file_kb": 24, "churn": 0.4},
        "huge":  {"count": 1, "files": 6, "file_kb": 256, "churn": 0.1}
      },
      "phases": [
        {"name": "load",  "ops_per_tenant": 2, "mix": {"backup": 1}},
        {"name": "churn", "ops": 40,
         "mix": {"backup": 4, "restore": 3, "verify": 1,
                 "replicate": 2, "delete": 1},
         "faults": [
           {"kind": "bitflip", "at_frac": 0.5, "recover": true},
           {"kind": "kill_primary", "at_frac": 0.7, "recover": true}
         ]}
      ]
    }

Op kinds map onto the repository surface every deployment shape already
exposes (backup/restore/verify/delete) plus the replication verbs
(replicate/repair); fault kinds map onto the seams in
:mod:`repro.chaos.faults`.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import WorkloadError

__all__ = [
    "OP_KINDS",
    "FAULT_KINDS",
    "TenantSpec",
    "ScheduledOp",
    "FaultEvent",
    "Schedule",
    "load_scenario",
    "validate_scenario",
    "compile_schedule",
]

#: Operations the driver knows how to execute.
OP_KINDS = ("backup", "restore", "verify", "replicate", "delete", "repair")

#: Fault classes the injector knows how to arm (see repro.chaos.faults).
FAULT_KINDS = (
    "enospc",
    "torn_write",
    "latency",
    "corrupt_transit",
    "bitflip",
    "kill_primary",
    "partition_mirror",
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload profile (derived from its size class)."""

    name: str
    tenant_class: str
    files: int
    file_kb: int
    churn: float


@dataclass(frozen=True)
class ScheduledOp:
    """One pinned operation: global index, phase, tenant, kind, params."""

    index: int
    phase: str
    tenant: str
    kind: str
    params: Dict = field(default_factory=dict)

    def as_doc(self) -> Dict:
        return {
            "index": self.index,
            "phase": self.phase,
            "tenant": self.tenant,
            "kind": self.kind,
            "params": self.params,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One fault pinned to an op site (injected just before that op)."""

    kind: str
    op_index: int
    phase: str
    tenant: str
    recover: bool
    params: Dict = field(default_factory=dict)

    def as_doc(self) -> Dict:
        return {
            "kind": self.kind,
            "op_index": self.op_index,
            "phase": self.phase,
            "tenant": self.tenant,
            "recover": self.recover,
            "params": self.params,
        }


@dataclass
class Schedule:
    """A compiled scenario: the full op list plus pinned fault sites."""

    name: str
    seed: int
    clients: int
    tenants: List[TenantSpec]
    phases: List[str]
    ops: List[ScheduledOp]
    faults: List[FaultEvent]

    def digest(self) -> str:
        """Hex sha256 over the canonical schedule document.

        Two compilations of the same spec + seed produce the same digest;
        the run report carries it so reproducibility is checkable.
        """
        doc = {
            "name": self.name,
            "seed": self.seed,
            "tenants": [t.name for t in self.tenants],
            "ops": [op.as_doc() for op in self.ops],
            "faults": [f.as_doc() for f in self.faults],
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    def phase_ops(self, phase: str) -> List[ScheduledOp]:
        return [op for op in self.ops if op.phase == phase]

    def faults_at(self, op_index: int) -> List[FaultEvent]:
        return [f for f in self.faults if f.op_index == op_index]

    def fault_kinds(self) -> List[str]:
        return sorted({f.kind for f in self.faults})


# ----------------------------------------------------------------------
# Spec loading + validation
# ----------------------------------------------------------------------
def load_scenario(path: str) -> Dict:
    """Read and validate a scenario spec file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise WorkloadError(f"cannot read scenario {path!r}: {exc}") from None
    except ValueError as exc:
        raise WorkloadError(f"scenario {path!r} is not valid JSON: {exc}") from None
    return validate_scenario(doc)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise WorkloadError(message)


def validate_scenario(doc: object) -> Dict:
    """Vet a scenario document; returns it with defaults filled in."""
    _require(isinstance(doc, dict), "scenario must be a JSON object")
    out = dict(doc)
    out.setdefault("name", "scenario")
    _require(isinstance(out["name"], str) and out["name"], "scenario name must be a non-empty string")
    out.setdefault("seed", 0)
    _require(isinstance(out["seed"], int), "scenario seed must be an integer")
    out.setdefault("clients", 2)
    _require(
        isinstance(out["clients"], int) and out["clients"] >= 1,
        "clients must be a positive integer",
    )

    tenants = out.get("tenants")
    _require(
        isinstance(tenants, dict) and tenants,
        "scenario needs a non-empty 'tenants' mapping of size classes",
    )
    norm_tenants: Dict[str, Dict] = {}
    for cls_name in sorted(tenants):
        cls = tenants[cls_name]
        _require(isinstance(cls, dict), f"tenant class {cls_name!r} must be an object")
        cls = dict(cls)
        cls.setdefault("count", 1)
        cls.setdefault("files", 3)
        cls.setdefault("file_kb", 16)
        cls.setdefault("churn", 0.3)
        _require(
            isinstance(cls["count"], int) and cls["count"] >= 1,
            f"tenant class {cls_name!r}: count must be >= 1",
        )
        _require(
            isinstance(cls["files"], int) and cls["files"] >= 1,
            f"tenant class {cls_name!r}: files must be >= 1",
        )
        _require(
            isinstance(cls["file_kb"], int) and cls["file_kb"] >= 1,
            f"tenant class {cls_name!r}: file_kb must be >= 1",
        )
        _require(
            isinstance(cls["churn"], (int, float)) and 0.0 <= cls["churn"] <= 1.0,
            f"tenant class {cls_name!r}: churn must be in [0, 1]",
        )
        norm_tenants[cls_name] = cls
    out["tenants"] = norm_tenants

    phases = out.get("phases")
    _require(isinstance(phases, list) and phases, "scenario needs a non-empty 'phases' list")
    norm_phases: List[Dict] = []
    for i, phase in enumerate(phases):
        _require(isinstance(phase, dict), f"phase {i} must be an object")
        phase = dict(phase)
        phase.setdefault("name", f"phase-{i + 1}")
        has_total = "ops" in phase
        has_per_tenant = "ops_per_tenant" in phase
        _require(
            has_total != has_per_tenant,
            f"phase {phase['name']!r} needs exactly one of 'ops' / 'ops_per_tenant'",
        )
        count_key = "ops" if has_total else "ops_per_tenant"
        _require(
            isinstance(phase[count_key], int) and phase[count_key] >= 1,
            f"phase {phase['name']!r}: {count_key} must be >= 1",
        )
        mix = phase.setdefault("mix", {"backup": 1})
        _require(isinstance(mix, dict) and mix, f"phase {phase['name']!r}: mix must be a non-empty object")
        for op, weight in mix.items():
            _require(op in OP_KINDS, f"phase {phase['name']!r}: unknown op kind {op!r}")
            _require(
                isinstance(weight, (int, float)) and weight >= 0,
                f"phase {phase['name']!r}: mix weight for {op!r} must be >= 0",
            )
        _require(
            any(weight > 0 for weight in mix.values()),
            f"phase {phase['name']!r}: mix has no positive weights",
        )
        faults = phase.setdefault("faults", [])
        _require(isinstance(faults, list), f"phase {phase['name']!r}: faults must be a list")
        norm_faults = []
        for fault in faults:
            _require(isinstance(fault, dict), f"phase {phase['name']!r}: each fault must be an object")
            fault = dict(fault)
            _require(
                fault.get("kind") in FAULT_KINDS,
                f"phase {phase['name']!r}: unknown fault kind {fault.get('kind')!r}",
            )
            if "at" in fault:
                _require(
                    isinstance(fault["at"], int) and fault["at"] >= 0,
                    f"phase {phase['name']!r}: fault 'at' must be >= 0",
                )
            else:
                frac = fault.setdefault("at_frac", 0.5)
                _require(
                    isinstance(frac, (int, float)) and 0.0 <= frac <= 1.0,
                    f"phase {phase['name']!r}: fault 'at_frac' must be in [0, 1]",
                )
            fault.setdefault("recover", True)
            _require(
                isinstance(fault["recover"], bool),
                f"phase {phase['name']!r}: fault 'recover' must be a boolean",
            )
            if "op_kind" in fault:
                _require(
                    fault["op_kind"] in OP_KINDS,
                    f"phase {phase['name']!r}: fault 'op_kind' must be one "
                    f"of {', '.join(OP_KINDS)}",
                )
            norm_faults.append(fault)
        phase["faults"] = norm_faults
        norm_phases.append(phase)
    out["phases"] = norm_phases
    return out


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _tenant_population(doc: Dict) -> List[TenantSpec]:
    tenants: List[TenantSpec] = []
    for cls_name in sorted(doc["tenants"]):
        cls = doc["tenants"][cls_name]
        for i in range(1, cls["count"] + 1):
            tenants.append(
                TenantSpec(
                    name=f"t-{cls_name}-{i:02d}",
                    tenant_class=cls_name,
                    files=cls["files"],
                    file_kb=cls["file_kb"],
                    churn=float(cls["churn"]),
                )
            )
    return tenants


def _draw_op(rng: random.Random, mix: Dict[str, float]) -> str:
    kinds = [k for k in OP_KINDS if mix.get(k, 0) > 0]
    weights = [mix[k] for k in kinds]
    return rng.choices(kinds, weights=weights, k=1)[0]


def _op_params(rng: random.Random, kind: str) -> Dict:
    if kind == "restore":
        # Mostly the latest version (the §5 restore-performance story),
        # sometimes an older one so chained recipes get exercised too.
        return {"pick": rng.choices(["latest", "random"], weights=[2, 1], k=1)[0]}
    if kind == "verify":
        return {"deep": False}
    return {}


def compile_schedule(doc: Dict, seed: Optional[int] = None) -> Schedule:
    """Compile a validated scenario into a deterministic :class:`Schedule`.

    ``seed`` overrides the spec's seed (the CLI ``--seed`` flag).  All
    randomness — tenant choice, op mix draws, restore version picks,
    fault tenant assignment — comes from one ``random.Random(seed)``, so
    the output is a pure function of (spec, seed).
    """
    doc = validate_scenario(doc)
    if seed is None:
        seed = doc["seed"]
    rng = random.Random(seed)
    tenants = _tenant_population(doc)
    names = [t.name for t in tenants]

    ops: List[ScheduledOp] = []
    faults: List[FaultEvent] = []
    index = 0
    for phase in doc["phases"]:
        phase_name = phase["name"]
        phase_start = index
        if "ops_per_tenant" in phase:
            for _round in range(phase["ops_per_tenant"]):
                for tenant in names:
                    kind = _draw_op(rng, phase["mix"])
                    ops.append(
                        ScheduledOp(index, phase_name, tenant, kind, _op_params(rng, kind))
                    )
                    index += 1
        else:
            for _ in range(phase["ops"]):
                tenant = rng.choice(names)
                kind = _draw_op(rng, phase["mix"])
                ops.append(
                    ScheduledOp(index, phase_name, tenant, kind, _op_params(rng, kind))
                )
                index += 1
        phase_ops = ops[phase_start:index]

        for fault in phase["faults"]:
            if "at" in fault:
                offset = min(fault["at"], len(phase_ops) - 1)
            else:
                offset = min(
                    int(fault["at_frac"] * len(phase_ops)), len(phase_ops) - 1
                )
            site = phase_ops[offset]
            wanted = fault.get("tenant")
            op_kind = fault.get("op_kind")

            def _matches(op: ScheduledOp) -> bool:
                return (wanted is None or op.tenant == wanted) and (
                    op_kind is None or op.kind == op_kind
                )

            if wanted is not None or op_kind is not None:
                # Pin to the first matching op at/after the site (wrapping
                # to the phase start) so the injection rides an op that
                # can actually realise it — an ENOSPC needs a write.
                candidates = [op for op in phase_ops[offset:] if _matches(op)] or [
                    op for op in phase_ops if _matches(op)
                ]
                if not candidates:
                    raise WorkloadError(
                        f"fault {fault['kind']!r} wants "
                        f"tenant={wanted!r} op_kind={op_kind!r} but phase "
                        f"{phase_name!r} schedules no matching op"
                    )
                site = candidates[0]
            params = {
                k: v
                for k, v in fault.items()
                if k not in ("kind", "at", "at_frac", "recover", "tenant", "op_kind")
            }
            faults.append(
                FaultEvent(
                    kind=fault["kind"],
                    op_index=site.index,
                    phase=phase_name,
                    tenant=site.tenant,
                    recover=fault["recover"],
                    params=params,
                )
            )

    return Schedule(
        name=doc["name"],
        seed=seed,
        clients=doc["clients"],
        tenants=tenants,
        phases=[phase["name"] for phase in doc["phases"]],
        ops=ops,
        faults=faults,
    )
