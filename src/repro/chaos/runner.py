"""Orchestrate one chaos run: compile → deploy → drive → check → report.

The runner owns lifecycle ordering, which matters:

1. compile the scenario (pure; the schedule digest is fixed here),
2. install the fault controller's backend wrapper *before* the
   deployment starts (daemons build their backends at first tenant
   touch — the wrapper must already be in place),
3. start the deployment, run each phase, check invariants at every
   phase boundary with the clients quiesced,
4. tear everything down (even on failure) and emit one JSON report.

The report is the product: schedule digest + fault sites make the run
reproducible, per-op latency quantiles make it a benchmark, and the
invariant results make it a verdict CI can gate on.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

from ..errors import ReproError, WorkloadError
from ..observability import MetricsRegistry, get_registry
from .deploy import make_deployment
from .driver import Driver, OpResult, TenantModel
from .faults import FaultController
from .invariants import check_invariants
from .scenario import Schedule, compile_schedule

__all__ = ["ChaosRunner", "run_scenario"]

#: Op kinds a subprocess client can execute (no controller, no local
#: filesystem access to the deployment roots required).
_WORKER_OPS = frozenset({"backup", "restore", "verify", "delete"})


class ChaosRunner:
    """Run one scenario end to end and return the machine-readable report.

    Owns the full lifecycle: compile the schedule, vet it against the
    deployment's fault support, install the fault controller *before* the
    deployment opens any backend (the wrapper seam only applies at open),
    drive every phase, check invariants after each, and tear everything
    down — including the scratch workdir when the caller did not pin one.
    """

    def __init__(
        self,
        scenario: Dict,
        deploy: str = "local",
        seed: Optional[int] = None,
        workdir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        client_mode: str = "threads",
        deploy_kwargs: Optional[Dict] = None,
    ) -> None:
        if client_mode not in ("threads", "process"):
            raise WorkloadError(
                f"unknown client mode {client_mode!r} (threads or process)"
            )
        self.scenario = scenario
        self.deploy_kind = deploy
        self.seed = seed
        self.workdir = workdir
        self.metrics = metrics if metrics is not None else get_registry()
        self.client_mode = client_mode
        self.deploy_kwargs = dict(deploy_kwargs or {})
        self.schedule: Optional[Schedule] = None

    # ------------------------------------------------------------------
    def run(self) -> Dict:
        started = time.perf_counter()
        self.schedule = compile_schedule(self.scenario, self.seed)
        self._vet()

        own_workdir = self.workdir is None
        workdir = self.workdir or tempfile.mkdtemp(prefix="hidestore-chaos-")
        os.makedirs(workdir, exist_ok=True)
        trees_root = os.path.join(workdir, "trees")
        deployment = make_deployment(
            self.deploy_kind,
            os.path.join(workdir, "deploy"),
            metrics=self.metrics,
            **self.deploy_kwargs,
        )

        controller = FaultController(self.metrics)
        models = {
            spec.name: TenantModel(
                spec, os.path.join(trees_root, spec.name), self.schedule.seed
            )
            for spec in self.schedule.tenants
        }
        driver = Driver(self.schedule, deployment, controller, models, self.metrics)
        invariants: List = []
        try:
            controller.install()  # before start(): daemons must wrap their backends
            deployment.start()
            if self.client_mode == "process":
                self._run_process_clients(driver, workdir)
                invariants.extend(
                    check_invariants(driver, deployment, "final", self.metrics)
                )
            else:
                for phase in self.schedule.phases:
                    driver.run_phase(phase)
                    invariants.extend(
                        check_invariants(driver, deployment, phase, self.metrics)
                    )
        finally:
            try:
                deployment.stop()
            finally:
                controller.uninstall()
                if own_workdir:
                    shutil.rmtree(workdir, ignore_errors=True)

        return self._report(
            driver, controller, invariants, time.perf_counter() - started
        )

    # ------------------------------------------------------------------
    def _vet(self) -> None:
        assert self.schedule is not None
        from .deploy import DEPLOY_KINDS, ClusterDeployment, DaemonDeployment, LocalDeployment

        supported = {
            "local": LocalDeployment.supports_faults,
            "daemon": DaemonDeployment.supports_faults,
            "cluster": ClusterDeployment.supports_faults,
        }.get(self.deploy_kind)
        if supported is None:
            raise WorkloadError(
                f"unknown deployment kind {self.deploy_kind!r} "
                f"(choose from {', '.join(DEPLOY_KINDS)})"
            )
        unsupported = sorted(set(self.schedule.fault_kinds()) - supported)
        if unsupported:
            raise WorkloadError(
                f"deployment {self.deploy_kind!r} cannot realise fault "
                f"kind(s): {', '.join(unsupported)}"
            )
        if self.client_mode == "process":
            if self.deploy_kind == "local":
                raise WorkloadError(
                    "process clients need a served deployment (daemon or cluster)"
                )
            if self.schedule.faults:
                raise WorkloadError(
                    "process clients cannot inject faults (the fault "
                    "controller lives in the runner process); use threads"
                )
            bad = sorted(
                {op.kind for op in self.schedule.ops} - _WORKER_OPS
            )
            if bad:
                raise WorkloadError(
                    f"process clients only run {sorted(_WORKER_OPS)}; "
                    f"the scenario schedules: {', '.join(bad)}"
                )

    # ------------------------------------------------------------------
    def _run_process_clients(self, driver: Driver, workdir: str) -> None:
        """Fan the full schedule out to one subprocess per client.

        Each worker owns its tenants end to end (all phases in one
        invocation — models live in the worker), then reports results and
        final models back as JSON for the invariant sweep.
        """
        schedule = self.schedule
        deployment = driver.deployment
        if deployment.kind == "cluster":
            connect = {
                "kind": "cluster",
                "seeds": [n.address for n in deployment.map.nodes],
            }
        else:
            connect = {"kind": "daemon", "address": deployment.address}
        tenants = [t.name for t in schedule.tenants]
        clients = max(1, min(schedule.clients, len(tenants)))
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        procs = []
        for i in range(clients):
            mine = set(tenants[i::clients])
            job = {
                "seed": schedule.seed,
                "connect": connect,
                "trees_root": os.path.join(workdir, "trees"),
                "tenants": [
                    {
                        "name": t.name,
                        "tenant_class": t.tenant_class,
                        "files": t.files,
                        "file_kb": t.file_kb,
                        "churn": t.churn,
                    }
                    for t in schedule.tenants
                    if t.name in mine
                ],
                "ops": [op.as_doc() for op in schedule.ops if op.tenant in mine],
            }
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.chaos.worker"],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            procs.append((proc, job))
        failures = []
        for proc, job in procs:
            out, _ = proc.communicate(json.dumps(job), timeout=600)
            if proc.returncode != 0:
                failures.append(f"worker exited with {proc.returncode}")
                continue
            try:
                doc = json.loads(out)
            except ValueError as exc:
                failures.append(f"worker emitted invalid JSON: {exc}")
                continue
            for row in doc.get("results", []):
                result = OpResult(
                    index=row["index"],
                    phase=row["phase"],
                    tenant=row["tenant"],
                    kind=row["kind"],
                    status=row["status"],
                    seconds=row["seconds"],
                    error=row.get("error"),
                )
                driver.results.append(result)
                self.metrics.inc("chaos.ops_total")
                self.metrics.inc(f"chaos.ops_{result.status}")
                self.metrics.observe(
                    f"chaos.op_seconds.{result.kind}", result.seconds
                )
            for tenant, state in doc.get("models", {}).items():
                model = driver.models.get(tenant)
                if model is None:
                    continue
                model.versions = state.get("versions", [])
                model.deleted = state.get("deleted", [])
        if failures:
            raise WorkloadError("; ".join(failures))
        driver.results.sort(key=lambda r: r.index)
        # Invariants run once at the end of a process-mode run; relabel
        # every result into the synthetic "final" phase they check.
        driver.results = [
            OpResult(r.index, "final", r.tenant, r.kind, r.status, r.seconds, r.error)
            for r in driver.results
        ]

    # ------------------------------------------------------------------
    def _report(
        self,
        driver: Driver,
        controller: FaultController,
        invariants: List,
        duration: float,
    ) -> Dict:
        schedule = self.schedule
        by_status: Dict[str, int] = {}
        by_kind: Dict[str, int] = {}
        for result in driver.results:
            by_status[result.status] = by_status.get(result.status, 0) + 1
            by_kind[result.kind] = by_kind.get(result.kind, 0) + 1
        failed = [r.as_doc() for r in driver.results if r.status.startswith("failed")]
        violations = sum(1 for inv in invariants if not inv.ok)
        snapshot = self.metrics.snapshot()
        latency = {
            name.rsplit(".", 1)[-1]: doc
            for name, doc in snapshot.get("histograms", {}).items()
            if name.startswith("chaos.op_seconds.")
        }
        chaos_counters = {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if name.startswith("chaos.")
        }
        ok = violations == 0 and by_status.get("failed_untyped", 0) == 0
        return {
            "scenario": schedule.name,
            "seed": schedule.seed,
            "deploy": self.deploy_kind,
            "client_mode": self.client_mode,
            "clients": schedule.clients,
            "schedule": {
                "digest": schedule.digest(),
                "tenants": len(schedule.tenants),
                "phases": schedule.phases,
                "ops": len(schedule.ops),
            },
            "fault_sites": [f.as_doc() for f in schedule.faults],
            "faults_injected": len(controller.fired),
            "faults_fired": controller.fired[:50],
            "fault_log": driver.fault_log[:50],
            "ops": {
                "attempted": len(driver.results),
                "by_status": by_status,
                "by_kind": by_kind,
                "failed": failed[:50],
            },
            "invariants": [inv.as_doc() for inv in invariants],
            "invariant_failures": violations,
            "ok": ok,
            "latency_seconds": latency,
            "metrics": chaos_counters,
            "duration_seconds": round(duration, 3),
        }


def run_scenario(
    scenario: Dict,
    deploy: str = "local",
    seed: Optional[int] = None,
    report_path: Optional[str] = None,
    **kwargs,
) -> Dict:
    """One-call façade: run a scenario, optionally write the JSON report."""
    report = ChaosRunner(scenario, deploy=deploy, seed=seed, **kwargs).run()
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report
