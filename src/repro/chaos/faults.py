"""Fault injectors layered at the system's real seams.

Three seams, all production code paths rather than test doubles:

* **Storage backend** — :class:`FaultInjectingBackend` wraps any
  :class:`~repro.storage.backend.StorageBackend` (installed process-wide
  via :func:`~repro.storage.backend.install_backend_wrapper`, so even the
  plain-directory repositories the daemon serves are covered).  Armed
  directives on the shared :class:`FaultController` fire on matching
  operations: ``enospc`` (a typed :class:`~repro.errors.StorageError` on
  ``put``, the disk-full mid-container-seal case), ``torn_write`` (land a
  truncated blob, then fail — the half-written container a crash leaves),
  ``latency`` (sleep before the call), ``corrupt_read`` (flip a byte in
  the returned blob).

* **Replication target** — :class:`WireCorruptingMirror` wraps a
  :class:`~repro.replication.targets.RemoteMirror` and flips a byte in
  the shipped blob *after* the source computed its digest, emulating
  corruption on the wire; the mirror daemon's digest validation must
  reject the PUT.

* **At-rest bytes** — :func:`flip_container_byte` corrupts a sealed
  container file in place (silent media corruption); only a deep verify
  or a failed restore notices, and only ``repair --from-mirror`` heals.

Process-level faults (SIGKILL a daemon, partition a listener) live on
the deployment shapes in :mod:`repro.chaos.deploy` — they are lifecycle
actions, not data-path wrappers.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import StorageError
from ..observability import MetricsRegistry, get_registry
from ..storage.backend import (
    StorageBackend,
    clear_backend_wrapper,
    install_backend_wrapper,
)

__all__ = [
    "FaultController",
    "FaultInjectingBackend",
    "WireCorruptingMirror",
    "flip_container_byte",
    "flip_byte",
]


def flip_byte(blob: bytes, offset: Optional[int] = None) -> bytes:
    """Return ``blob`` with one byte inverted (middle byte by default)."""
    if not blob:
        return blob
    if offset is None:
        offset = len(blob) // 2
    offset = min(offset, len(blob) - 1)
    return blob[:offset] + bytes([blob[offset] ^ 0xFF]) + blob[offset + 1 :]


@dataclass
class _Directive:
    """One armed fault: what to do, where it applies, how often."""

    kind: str
    op: Optional[str] = None  # backend verb ("put", "get", ...) or None=any
    match_url: Optional[str] = None  # substring of the backend URL
    match_name: Optional[str] = None  # prefix of the object name
    remaining: int = 1  # firings left (<0 = unlimited)
    params: Dict = field(default_factory=dict)
    callback: Optional[object] = None  # called (url, name) when fired


class FaultController:
    """Thread-safe registry of armed fault directives.

    One controller is shared by every :class:`FaultInjectingBackend` in
    the process; the driver arms directives at the scheduled fault sites
    and the next matching backend operation trips them.  Matching is by
    backend verb, backend-URL substring (tenant roots embed the tenant
    name, which is how a fault stays pinned to its tenant) and object
    name prefix (``containers/`` vs metadata).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else get_registry()
        self._lock = threading.Lock()
        self._directives: List[_Directive] = []
        #: Everything that actually tripped: dicts of kind/op/url/name.
        self.fired: List[Dict] = []
        self._installed = False

    # -- lifecycle ------------------------------------------------------
    def install(self) -> None:
        """Slide the injector under every backend built from now on."""
        install_backend_wrapper(self.wrap)
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            clear_backend_wrapper()
            self._installed = False

    def __enter__(self) -> "FaultController":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    def wrap(self, backend: StorageBackend) -> StorageBackend:
        if isinstance(backend, FaultInjectingBackend):
            return backend
        return FaultInjectingBackend(backend, self)

    # -- arming ----------------------------------------------------------
    def arm(
        self,
        kind: str,
        op: Optional[str] = None,
        match_url: Optional[str] = None,
        match_name: Optional[str] = None,
        count: int = 1,
        callback: Optional[object] = None,
        **params,
    ) -> None:
        with self._lock:
            self._directives.append(
                _Directive(
                    kind=kind,
                    op=op,
                    match_url=match_url,
                    match_name=match_name,
                    remaining=count,
                    params=params,
                    callback=callback,
                )
            )

    def disarm_all(self) -> None:
        with self._lock:
            self._directives.clear()

    def armed_count(self) -> int:
        with self._lock:
            return len(self._directives)

    def note_injected(self, kind: str, **detail) -> None:
        """Record a fault injected outside the backend seam (kill, ...)."""
        with self._lock:
            self.fired.append({"kind": kind, **detail})
        self.metrics.inc("chaos.faults_injected")

    # -- firing ----------------------------------------------------------
    def _take(self, op: str, url: str, name: str) -> List[_Directive]:
        """Pop (or decrement) every directive matching this operation."""
        hits: List[_Directive] = []
        with self._lock:
            if not self._directives:
                return hits
            keep: List[_Directive] = []
            for d in self._directives:
                matches = (
                    (d.op is None or d.op == op)
                    and (d.match_url is None or d.match_url in url)
                    and (d.match_name is None or name.startswith(d.match_name))
                )
                if not matches:
                    keep.append(d)
                    continue
                hits.append(d)
                if d.remaining > 0:
                    d.remaining -= 1
                if d.remaining != 0:
                    keep.append(d)
            self._directives = keep
            for d in hits:
                self.fired.append(
                    {"kind": d.kind, "op": op, "url": url, "name": name}
                )
        for _ in hits:
            self.metrics.inc("chaos.faults_injected")
        return hits


class FaultInjectingBackend:
    """A :class:`StorageBackend` that consults a :class:`FaultController`.

    Pure pass-through while nothing relevant is armed — installing the
    wrapper is free for tenants no fault targets.
    """

    def __init__(self, inner: StorageBackend, controller: FaultController) -> None:
        self.inner = inner
        self.controller = controller

    # -- proxied identity -----------------------------------------------
    @property
    def url(self) -> str:
        return self.inner.url

    @property
    def prefers_ranged_reads(self) -> bool:
        return self.inner.prefers_ranged_reads

    # -- directive application ------------------------------------------
    def _apply(self, op: str, name: str, blob: Optional[bytes] = None) -> Optional[bytes]:
        """Fire matching directives; may sleep, raise, or mutate ``blob``."""
        hits = self.controller._take(op, self.inner.url, name)
        for d in hits:
            if d.callback is not None:
                d.callback(self.inner.url, name)
            if d.kind == "latency":
                time.sleep(float(d.params.get("seconds", 0.05)))
            elif d.kind == "enospc":
                raise StorageError(
                    f"injected fault: no space left on device (ENOSPC) "
                    f"while writing {name!r}"
                )
            elif d.kind == "torn_write":
                if blob is not None and op == "put":
                    torn = blob[: max(1, len(blob) // 2)]
                    try:
                        self.inner.put(name, torn)
                    except StorageError:
                        pass  # already exists: the tear hit a replay
                raise StorageError(
                    f"injected fault: write torn mid-flight for {name!r}"
                )
            elif d.kind == "corrupt_read":
                if blob is not None:
                    blob = flip_byte(blob)
        return blob

    # -- protocol ---------------------------------------------------------
    def put(self, name: str, blob: bytes) -> None:
        self._apply("put", name, blob)
        self.inner.put(name, blob)

    def put_meta(self, name: str, blob: bytes) -> None:
        self._apply("put_meta", name, blob)
        self.inner.put_meta(name, blob)

    def get(self, name: str) -> bytes:
        blob = self.inner.get(name)
        out = self._apply("get", name, blob)
        return blob if out is None else out

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        blob = self.inner.get_range(name, offset, length)
        out = self._apply("get", name, blob)
        return blob if out is None else out

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def digest(self, name: str) -> str:
        return self.inner.digest(name)

    def delete(self, name: str) -> None:
        self._apply("delete", name)
        self.inner.delete(name)

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def rename(self, name: str, new_name: str) -> None:
        self._apply("rename", name)
        self.inner.rename(name, new_name)

    def sweep_tmp(self, prefix: str = "") -> None:
        self.inner.sweep_tmp(prefix)

    def close(self) -> None:
        self.inner.close()


class WireCorruptingMirror:
    """A replication target whose next container PUT is corrupted in
    transit — after the source computed the object digest, before the
    mirror sees the bytes — so the mirror's digest validation must reject
    it.  Wraps a :class:`~repro.replication.targets.RemoteMirror` (the
    only target with a validating far side)."""

    def __init__(self, inner, controller: Optional[FaultController] = None, count: int = 1) -> None:
        from ..replication.targets import RemoteMirror

        if not isinstance(inner, RemoteMirror):
            raise StorageError(
                "corrupt_transit needs a RemoteMirror target (the mirror "
                "daemon performs the digest validation)"
            )
        self.inner = inner
        self.controller = controller
        self._remaining = count

    def state(self):
        return self.inner.state()

    def put(self, kind: str, name: str, blob: bytes, staged: bool = False) -> None:
        if self._remaining > 0 and kind == "container":
            self._remaining -= 1
            if self.controller is not None:
                self.controller.note_injected("corrupt_transit", name=name)
            from ..replication.state import blob_digest

            # Send the digest of the *good* bytes with the corrupted blob:
            # exactly what wire corruption looks like to the mirror.
            self.inner.remote.replicate_put(
                kind, name, flip_byte(blob), blob_digest(blob), staged
            )
            return
        self.inner.put(kind, name, blob, staged=staged)

    def commit(self, renames, deletes) -> None:
        self.inner.commit(renames, deletes)

    def fetch(self, kind: str, name: str) -> bytes:
        return self.inner.fetch(kind, name)

    def identity(self) -> Dict[str, str]:
        return self.inner.identity()

    def close(self) -> None:
        self.inner.close()


def flip_container_byte(
    repo_root: str,
    rng: Optional[random.Random] = None,
    controller: Optional[FaultController] = None,
) -> str:
    """Corrupt one sealed container file in place (at-rest bit rot).

    Picks a container deterministically (seeded ``rng``) from the sorted
    listing and inverts one byte in the middle of its payload.  Returns
    the corrupted file's object name; raises :class:`StorageError` when
    the repository has no sealed containers yet.
    """
    containers_dir = os.path.join(repo_root, "containers")
    try:
        names = sorted(
            n for n in os.listdir(containers_dir) if n.endswith(".hdsc")
        )
    except OSError:
        names = []
    if not names:
        raise StorageError(f"no sealed containers under {repo_root!r} to corrupt")
    pick = names[-1] if rng is None else rng.choice(names)
    path = os.path.join(containers_dir, pick)
    size = os.path.getsize(path)
    offset = size // 2
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
    if controller is not None:
        controller.note_injected("bitflip", name=f"containers/{pick}")
    return f"containers/{pick}"
