"""Post-phase invariant checks: replay reality against the driver model.

Run after every phase, with all client threads quiesced and every
recovery action applied.  Each check compares what the deployment
actually holds against the :class:`~repro.chaos.driver.TenantModel` the
driver maintained, and returns a structured result — the chaos report is
machine-readable so CI can gate on it.

The five invariants:

* **typed_errors** — every error a client saw during the phase was a
  :class:`~repro.errors.ReproError` subclass.  Faults are allowed to fail
  operations; they are never allowed to produce an untyped exception.
* **no_torn_versions** — each tenant's version list matches the model
  exactly (an interrupted backup either committed whole or vanished
  whole), and every version restores bit-identically to the content
  digest recorded at backup time.
* **mirror_consistency** — a mirror is never torn: its version set is
  exactly the model's last-synced set, every mirrored version restores
  to its recorded digest, a deep verify passes, and no ``*.staged``
  litter survives (the two-phase ship protocol cleaned up after itself).
* **deletion_propagation** — §4.5 deletions are real: deleted version
  ids are gone from the source, and restoring one fails *typed*.
* **clean_resume** — after a node restart, every tenant's repository
  answers ``stats``/``versions`` again without manual intervention.

Every check increments ``chaos.invariants_checked``; a failing one also
increments ``chaos.invariant_failures`` — both surface through
``hidestore stats --metrics``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError
from ..observability import MetricsRegistry, get_registry
from .deploy import Deployment
from .driver import Driver, TenantModel, drain_digest

__all__ = ["InvariantResult", "check_invariants", "INVARIANT_NAMES"]

INVARIANT_NAMES = (
    "typed_errors",
    "no_torn_versions",
    "mirror_consistency",
    "deletion_propagation",
    "clean_resume",
)

_MAX_DETAILS = 20


@dataclass
class InvariantResult:
    name: str
    phase: str
    ok: bool
    checked: int  # how many tenants/versions the check actually covered
    details: List[str] = field(default_factory=list)

    def as_doc(self) -> Dict:
        return {
            "name": self.name,
            "phase": self.phase,
            "ok": self.ok,
            "checked": self.checked,
            "details": self.details[:_MAX_DETAILS],
        }


class _Check:
    """Accumulator for one invariant over all tenants."""

    def __init__(self, name: str, phase: str) -> None:
        self.name = name
        self.phase = phase
        self.checked = 0
        self.details: List[str] = []

    def fail(self, detail: str) -> None:
        if len(self.details) < _MAX_DETAILS:
            self.details.append(detail)
        elif len(self.details) == _MAX_DETAILS:
            self.details.append("... further details elided")

    def result(self) -> InvariantResult:
        return InvariantResult(
            self.name, self.phase, not self.details, self.checked, self.details
        )


def check_invariants(
    driver: Driver,
    deployment: Deployment,
    phase: str,
    metrics: Optional[MetricsRegistry] = None,
) -> List[InvariantResult]:
    """Run every invariant against the current deployment state."""
    metrics = metrics if metrics is not None else get_registry()
    models = driver.models
    results = [
        _typed_errors(driver, phase),
        _no_torn_versions(deployment, models, phase),
        _mirror_consistency(deployment, models, phase),
        _deletion_propagation(deployment, models, phase),
        _clean_resume(driver, deployment, models, phase),
    ]
    for result in results:
        metrics.inc("chaos.invariants_checked")
        if not result.ok:
            metrics.inc("chaos.invariant_failures")
    return results


# ----------------------------------------------------------------------
def _typed_errors(driver: Driver, phase: str) -> InvariantResult:
    check = _Check("typed_errors", phase)
    for result in driver.results:
        if result.phase != phase:
            continue
        check.checked += 1
        if result.status == "failed_untyped":
            check.fail(
                f"op {result.index} ({result.kind} on {result.tenant}) "
                f"raised an untyped error: {result.error}"
            )
    return check.result()


def _no_torn_versions(
    deployment: Deployment, models: Dict[str, TenantModel], phase: str
) -> InvariantResult:
    check = _Check("no_torn_versions", phase)
    for tenant, model in sorted(models.items()):
        try:
            repo = deployment.repo(tenant)
            rows = repo.versions()
        except ReproError as exc:
            check.checked += 1
            check.fail(f"{tenant}: repository unreachable: {exc}")
            continue
        actual = [row["version_id"] for row in rows]
        expected = model.version_ids()
        check.checked += 1
        if actual != expected:
            check.fail(
                f"{tenant}: version set torn — repository holds {actual}, "
                f"driver recorded {expected}"
            )
            continue
        for row in model.versions:
            check.checked += 1
            try:
                _plan, stream = repo.restore(row["id"], verify=True)
                digest = drain_digest(stream)
            except ReproError as exc:
                check.fail(f"{tenant} v{row['id']}: restore failed: {exc}")
                continue
            if digest != row["digest"]:
                check.fail(
                    f"{tenant} v{row['id']}: restored bytes do not match "
                    f"the digest recorded at backup time"
                )
    return check.result()


def _mirror_consistency(
    deployment: Deployment, models: Dict[str, TenantModel], phase: str
) -> InvariantResult:
    from ..replication.repair import verify_repository
    from ..repository import LocalRepository

    check = _Check("mirror_consistency", phase)
    for tenant, model in sorted(models.items()):
        if model.mirror_expected is None:
            continue  # never replicated; nothing promised about the mirror
        root = deployment.mirror_root(tenant)
        check.checked += 1
        if not os.path.isdir(root):
            check.fail(f"{tenant}: mirror root {root!r} missing")
            continue
        # Staged objects are two-phase-ship intermediates: after a sync
        # that *completed* (either way) they must be gone, but a sync
        # that died mid-ship legitimately leaves them until the next
        # sync commits over them.
        if not model.mirror_dirty:
            staged = _staged_litter(root)
            if staged:
                check.fail(
                    f"{tenant}: mirror holds staged litter after quiesce: {staged}"
                )
        try:
            mirror_repo = LocalRepository(root)
            actual = [row["version_id"] for row in mirror_repo.versions()]
        except ReproError as exc:
            check.fail(f"{tenant}: mirror unreadable: {exc}")
            continue
        if actual != model.mirror_expected:
            check.fail(
                f"{tenant}: mirror torn — holds versions {actual}, last "
                f"completed sync shipped {model.mirror_expected}"
            )
            continue
        for vid in model.mirror_expected:
            check.checked += 1
            want = model.mirror_digests.get(vid)
            try:
                _plan, stream = mirror_repo.restore(vid, verify=True)
                digest = drain_digest(stream)
            except ReproError as exc:
                check.fail(f"{tenant}: mirror v{vid} restore failed: {exc}")
                continue
            if want is not None and digest != want:
                check.fail(
                    f"{tenant}: mirror v{vid} bytes diverge from the "
                    f"content shipped at sync time"
                )
        report = verify_repository(root, deep=True)
        check.checked += 1
        if not report.ok:
            check.fail(f"{tenant}: mirror deep verify failed: {report.summary()}")
    return check.result()


def _staged_litter(root: str) -> List[str]:
    from ..replication.targets import STAGED_SUFFIX

    litter = []
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            if name.endswith(STAGED_SUFFIX):
                litter.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(litter)


def _deletion_propagation(
    deployment: Deployment, models: Dict[str, TenantModel], phase: str
) -> InvariantResult:
    check = _Check("deletion_propagation", phase)
    for tenant, model in sorted(models.items()):
        if not model.deleted:
            continue
        try:
            repo = deployment.repo(tenant)
            actual = {row["version_id"] for row in repo.versions()}
        except ReproError as exc:
            check.checked += 1
            check.fail(f"{tenant}: repository unreachable: {exc}")
            continue
        check.checked += 1
        survivors = sorted(set(model.deleted) & actual)
        if survivors:
            check.fail(f"{tenant}: deleted versions still listed: {survivors}")
        # Restoring a deleted version must fail, and fail *typed*.
        victim = model.deleted[-1]
        check.checked += 1
        try:
            _plan, stream = repo.restore(victim, verify=True)
            drain_digest(stream)
            check.fail(f"{tenant}: deleted v{victim} still restores")
        except ReproError:
            pass  # the expected typed refusal
        except Exception as exc:
            check.fail(
                f"{tenant}: restoring deleted v{victim} raised untyped "
                f"{type(exc).__name__}: {exc}"
            )
    return check.result()


def _clean_resume(
    driver: Driver,
    deployment: Deployment,
    models: Dict[str, TenantModel],
    phase: str,
) -> InvariantResult:
    check = _Check("clean_resume", phase)
    if not driver.restarted_this_phase:
        return check.result()  # vacuously true; checked == 0 says "not exercised"
    for tenant in sorted(models):
        check.checked += 1
        try:
            repo = deployment.repo(tenant)
            repo.stats()
            repo.versions()
        except ReproError as exc:
            check.fail(
                f"{tenant}: repository did not resume cleanly after "
                f"restart of {driver.restarted_this_phase}: {exc}"
            )
    return check.result()
