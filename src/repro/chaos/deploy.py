"""Deployment shapes the chaos harness drives.

One interface, three realisations of "a backup system with a mirror":

* :class:`LocalDeployment` — per-tenant :class:`LocalRepository` plus a
  per-tenant local mirror directory.  No processes, no network: the
  fastest shape, for exercising the engine + storage layers.
* :class:`DaemonDeployment` — one in-process backup daemon serving every
  tenant, plus a second daemon acting as the off-site mirror.  Faults
  can SIGKILL-equivalent the daemon mid-backup and partition the mirror.
* :class:`ClusterDeployment` — a 3-node consistent-hash cluster
  (:class:`~repro.cluster.supervisor.ClusterHarness`) driven through the
  routing :class:`~repro.cluster.client.ClusterClient`, plus a mirror
  daemon.  ``kill_primary`` kills the victim tenant's ring primary.

Every shape runs in this process — which is what lets the storage-level
fault injector (:mod:`repro.chaos.faults`) reach the daemons' backends,
and lets invariants inspect authoritative on-disk state directly.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..errors import ReproError, WorkloadError
from ..observability import MetricsRegistry
from ..repository import LocalRepository

__all__ = [
    "Deployment",
    "LocalDeployment",
    "DaemonDeployment",
    "ClusterDeployment",
    "make_deployment",
    "DEPLOY_KINDS",
]

DEPLOY_KINDS = ("local", "daemon", "cluster")

#: Fault classes each shape can realise.
_LOCAL_FAULTS = frozenset({"enospc", "torn_write", "latency", "bitflip"})
_SERVER_FAULTS = _LOCAL_FAULTS | frozenset(
    {"corrupt_transit", "kill_primary", "partition_mirror"}
)


class Deployment:
    """Common surface; see the concrete shapes for semantics."""

    kind: str = "abstract"
    supports_faults: frozenset = frozenset()

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def repo(self, tenant: str):
        """The repository surface for one tenant (cached per tenant)."""
        raise NotImplementedError

    def tenant_root(self, tenant: str) -> str:
        """Local directory of the tenant's authoritative copy."""
        raise NotImplementedError

    def mirror_target(self, tenant: str):
        """A fresh :class:`ReplicationTarget` for the tenant's mirror."""
        raise NotImplementedError

    def mirror_root(self, tenant: str) -> str:
        """Local directory of the tenant's mirror copy."""
        raise NotImplementedError

    def kill_primary(self, tenant: str) -> str:
        raise WorkloadError(f"deployment {self.kind!r} cannot kill a primary")

    def restart(self, label: str) -> None:
        raise WorkloadError(f"deployment {self.kind!r} cannot restart nodes")

    def partition_mirror(self) -> None:
        raise WorkloadError(f"deployment {self.kind!r} cannot partition its mirror")

    def heal_mirror(self) -> None:
        raise WorkloadError(f"deployment {self.kind!r} cannot heal its mirror")

    def invalidate(self, tenant: str) -> None:
        """Drop cached engine state after out-of-band writes (repair)."""

    def __enter__(self) -> "Deployment":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# local: in-process engine, no network
# ----------------------------------------------------------------------
class LocalDeployment(Deployment):
    """In-process deployment: every tenant is a :class:`LocalRepository`.

    No daemon means no process-level faults — only the storage-seam
    classes (ENOSPC, torn writes, latency, bit flips) apply — but runs
    are fast and hermetic, which makes this the default shape for unit
    tests and the negative-control oracle.
    """

    kind = "local"
    supports_faults = _LOCAL_FAULTS

    def __init__(self, workdir: str, metrics: Optional[MetricsRegistry] = None) -> None:
        self.workdir = workdir
        self.metrics = metrics
        self.repos_root = os.path.join(workdir, "repos")
        self.mirrors_root = os.path.join(workdir, "mirror")
        self._repos: Dict[str, LocalRepository] = {}

    def start(self) -> None:
        os.makedirs(self.repos_root, exist_ok=True)
        os.makedirs(self.mirrors_root, exist_ok=True)

    def stop(self) -> None:
        self._repos.clear()

    def repo(self, tenant: str) -> LocalRepository:
        repo = self._repos.get(tenant)
        if repo is None:
            repo = LocalRepository(
                os.path.join(self.repos_root, tenant), metrics=self.metrics
            )
            self._repos[tenant] = repo
        return repo

    def tenant_root(self, tenant: str) -> str:
        return os.path.join(self.repos_root, tenant)

    def mirror_target(self, tenant: str):
        from ..replication.targets import LocalMirror

        return LocalMirror(os.path.join(self.mirrors_root, tenant))

    def mirror_root(self, tenant: str) -> str:
        return os.path.join(self.mirrors_root, tenant)

    def invalidate(self, tenant: str) -> None:
        repo = self._repos.get(tenant)
        if repo is not None:
            repo.invalidate()


# ----------------------------------------------------------------------
# daemon: one serving daemon + one mirror daemon
# ----------------------------------------------------------------------
class DaemonDeployment(Deployment):
    """One shared backup daemon plus a mirror daemon, driven over the wire.

    Adds the process-level fault classes: ``kill_primary`` SIGKILLs the
    (single) daemon mid-operation and ``partition_mirror`` makes the
    mirror refuse connections.  Note the blast radius — a kill aborts
    *every* tenant's in-flight operation, which is exactly the ambiguity
    the driver's reconciliation exists to absorb.
    """

    kind = "daemon"
    supports_faults = _SERVER_FAULTS

    def __init__(
        self,
        workdir: str,
        metrics: Optional[MetricsRegistry] = None,
        **daemon_kwargs,
    ) -> None:
        self.workdir = workdir
        self.metrics = metrics
        self.daemon_kwargs = daemon_kwargs
        self.primary_root = os.path.join(workdir, "primary")
        self.mirror_base = os.path.join(workdir, "mirror")
        self.primary = None
        self.mirror = None
        self._port: Optional[int] = None
        self._mirror_port: Optional[int] = None
        self._repos: Dict[str, object] = {}

    def _spawn_primary(self):
        from ..server.daemon import DaemonThread

        thread = DaemonThread(
            self.primary_root,
            host="127.0.0.1",
            port=self._port or 0,
            metrics=MetricsRegistry(),
            **self.daemon_kwargs,
        )
        thread.start()
        self._port = thread.daemon.port
        return thread

    def start(self) -> None:
        from ..server.daemon import DaemonThread

        os.makedirs(self.primary_root, exist_ok=True)
        os.makedirs(self.mirror_base, exist_ok=True)
        self.primary = self._spawn_primary()
        mirror = DaemonThread(
            self.mirror_base, host="127.0.0.1", port=0, metrics=MetricsRegistry()
        )
        mirror.start()
        self.mirror = mirror
        self._mirror_port = mirror.daemon.port

    def stop(self) -> None:
        for repo in self._repos.values():
            try:
                repo.close()
            except ReproError:
                pass
        self._repos.clear()
        if self.primary is not None:
            self.primary.stop()
            self.primary = None
        if self.mirror is not None:
            self.mirror.stop()
            self.mirror = None

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self._port}"

    @property
    def mirror_address(self) -> str:
        return f"127.0.0.1:{self._mirror_port}"

    def repo(self, tenant: str):
        from ..client.remote import RemoteRepository

        repo = self._repos.get(tenant)
        if repo is None:
            repo = RemoteRepository(
                self.address,
                tenant,
                timeout=15.0,
                retries=2,
                backoff=0.1,
                retry_budget_seconds=20.0,
            )
            self._repos[tenant] = repo
        return repo

    def tenant_root(self, tenant: str) -> str:
        return os.path.join(self.primary_root, tenant)

    def mirror_target(self, tenant: str):
        from ..replication.targets import RemoteMirror

        return RemoteMirror(self.mirror_address, tenant, timeout=10.0, retries=2)

    def mirror_root(self, tenant: str) -> str:
        return os.path.join(self.mirror_base, tenant)

    def kill_primary(self, tenant: str) -> str:
        if self.primary is not None:
            self.primary.kill()
            self.primary = None
        return "primary"

    def restart(self, label: str) -> None:
        if label != "primary":
            raise WorkloadError(f"unknown daemon label {label!r}")
        if self.primary is None:
            self.primary = self._spawn_primary()

    def partition_mirror(self) -> None:
        if self.mirror is not None:
            self.mirror.pause_accepting()

    def heal_mirror(self) -> None:
        if self.mirror is not None:
            self.mirror.resume_accepting()

    def invalidate(self, tenant: str) -> None:
        _invalidate_daemon_tenant(self.primary, tenant)


# ----------------------------------------------------------------------
# cluster: 3 nodes + routing client + mirror daemon
# ----------------------------------------------------------------------
class ClusterDeployment(Deployment):
    """A consistent-hash daemon cluster plus a mirror, via ClusterClient.

    ``kill_primary`` resolves the ring primary of the *victim tenant* and
    SIGKILLs that node only, so other tenants ride through on their own
    primaries — the closest shape to the paper's production setting.
    """

    kind = "cluster"
    supports_faults = _SERVER_FAULTS

    def __init__(
        self,
        workdir: str,
        nodes: int = 3,
        replicas: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        **daemon_kwargs,
    ) -> None:
        self.workdir = workdir
        self.nodes = nodes
        self.replicas = replicas
        self.metrics = metrics
        self.daemon_kwargs = daemon_kwargs
        self.harness = None
        self.map = None
        self.client = None
        self.mirror = None
        self.mirror_base = os.path.join(workdir, "mirror")
        self._mirror_port: Optional[int] = None
        self._repos: Dict[str, object] = {}

    def start(self) -> None:
        from ..cluster.client import ClusterClient
        from ..cluster.supervisor import ClusterHarness
        from ..server.daemon import DaemonThread

        os.makedirs(self.mirror_base, exist_ok=True)
        self.harness = ClusterHarness(
            os.path.join(self.workdir, "cluster"),
            nodes=self.nodes,
            replicas=self.replicas,
            **self.daemon_kwargs,
        )
        self.map = self.harness.start()
        self.client = ClusterClient(
            [n.address for n in self.map.nodes],
            cluster_map=self.map,
            timeout=15.0,
            retries=2,
            backoff=0.1,
            write_retry_timeout=3.0,
            write_retry_interval=0.2,
            retry_budget_seconds=20.0,
        )
        mirror = DaemonThread(
            self.mirror_base, host="127.0.0.1", port=0, metrics=MetricsRegistry()
        )
        mirror.start()
        self.mirror = mirror
        self._mirror_port = mirror.daemon.port

    def stop(self) -> None:
        self._repos.clear()
        if self.client is not None:
            self.client.close()
            self.client = None
        if self.harness is not None:
            self.harness.stop()
            self.harness = None
        if self.mirror is not None:
            self.mirror.stop()
            self.mirror = None

    @property
    def mirror_address(self) -> str:
        return f"127.0.0.1:{self._mirror_port}"

    def repo(self, tenant: str):
        repo = self._repos.get(tenant)
        if repo is None:
            repo = self.client.repo(tenant)
            self._repos[tenant] = repo
        return repo

    def _primary_node(self, tenant: str):
        return self.map.primary(tenant)

    def tenant_root(self, tenant: str) -> str:
        return os.path.join(self._primary_node(tenant).root, tenant)

    def mirror_target(self, tenant: str):
        from ..replication.targets import RemoteMirror

        return RemoteMirror(self.mirror_address, tenant, timeout=10.0, retries=2)

    def mirror_root(self, tenant: str) -> str:
        return os.path.join(self.mirror_base, tenant)

    def kill_primary(self, tenant: str) -> str:
        name = self._primary_node(tenant).name
        self.harness.kill_node(name)
        return name

    def restart(self, label: str) -> None:
        self.harness.restart_node(label)

    def partition_mirror(self) -> None:
        if self.mirror is not None:
            self.mirror.pause_accepting()

    def heal_mirror(self) -> None:
        if self.mirror is not None:
            self.mirror.resume_accepting()

    def invalidate(self, tenant: str) -> None:
        name = self._primary_node(tenant).name
        thread = self.harness.threads.get(name) if self.harness else None
        _invalidate_daemon_tenant(thread, tenant)


def _invalidate_daemon_tenant(daemon_thread, tenant: str) -> None:
    """Best-effort drop of a daemon's cached engine for one tenant.

    Needed after the harness writes repository files behind the daemon's
    back (at-rest corruption, repair): the cached engine must reload from
    disk, exactly as the CLI's ``repair`` asks an operator to bounce the
    tenant.  In-process daemons make this a direct registry call.
    """
    if daemon_thread is None:
        return
    try:
        handle = daemon_thread.daemon.registry.get(tenant)
    except ReproError:
        return
    handle.repository.invalidate()


def make_deployment(
    kind: str,
    workdir: str,
    metrics: Optional[MetricsRegistry] = None,
    **kwargs,
) -> Deployment:
    """Build the deployment for ``kind`` (``local``/``daemon``/``cluster``)."""
    if kind == "local":
        return LocalDeployment(workdir, metrics=metrics)
    if kind == "daemon":
        return DaemonDeployment(workdir, metrics=metrics, **kwargs)
    if kind == "cluster":
        return ClusterDeployment(workdir, metrics=metrics, **kwargs)
    raise WorkloadError(
        f"unknown deployment kind {kind!r} (choose from {', '.join(DEPLOY_KINDS)})"
    )
