"""Fleet-scale scenario & chaos harness.

Trace-driven multi-tenant replay with deterministic fault injection and
post-phase invariant checking:

* :mod:`repro.chaos.scenario` — JSON spec → deterministic op schedule,
* :mod:`repro.chaos.faults` — fault injectors at the storage-backend,
  replication-target and at-rest seams,
* :mod:`repro.chaos.deploy` — local / daemon / cluster deployment shapes,
* :mod:`repro.chaos.driver` — multi-client execution + tenant models,
* :mod:`repro.chaos.invariants` — reality vs model after every phase,
* :mod:`repro.chaos.runner` — lifecycle + the machine-readable report,
* :mod:`repro.chaos.worker` — subprocess client for process isolation.

Entry point: ``hidestore chaos run SCENARIO.json`` or
:func:`repro.chaos.runner.run_scenario`.
"""

from .faults import FaultController, FaultInjectingBackend, flip_container_byte
from .runner import ChaosRunner, run_scenario
from .scenario import compile_schedule, load_scenario

__all__ = [
    "FaultController",
    "FaultInjectingBackend",
    "flip_container_byte",
    "ChaosRunner",
    "run_scenario",
    "compile_schedule",
    "load_scenario",
]
