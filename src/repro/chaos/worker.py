"""Subprocess chaos client: real process isolation for the load path.

``python -m repro.chaos.worker`` reads one JSON job from stdin —
connection info, its slice of the tenant population, and its ops in
schedule order — executes them against the served deployment through the
same client stack any external tool would use (``RemoteRepository`` /
``ClusterClient``), and writes results plus final tenant models to
stdout.

Workers only run the pure client ops (backup/restore/verify/delete):
fault injection needs the runner process's in-memory controller, and
replication needs filesystem access to the deployment roots — both stay
with thread-mode clients.  What a worker buys is the realism of separate
interpreters: its traffic contends on real sockets, not just the GIL.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from ..errors import ReproError
from .driver import TenantModel, drain_digest
from .scenario import TenantSpec


def _open_client(connect: Dict):
    if connect["kind"] == "cluster":
        from ..cluster.client import ClusterClient

        client = ClusterClient(
            connect["seeds"],
            timeout=15.0,
            retries=2,
            backoff=0.1,
            retry_budget_seconds=20.0,
        )
        return client, client.repo
    from ..client.remote import RemoteRepository

    repos: Dict[str, RemoteRepository] = {}

    def repo(tenant: str) -> RemoteRepository:
        if tenant not in repos:
            repos[tenant] = RemoteRepository(
                connect["address"],
                tenant,
                timeout=15.0,
                retries=2,
                backoff=0.1,
                retry_budget_seconds=20.0,
            )
        return repos[tenant]

    class _Closer:
        def close(self) -> None:
            for r in repos.values():
                try:
                    r.close()
                except ReproError:
                    pass

    return _Closer(), repo


def _execute(op: Dict, model: TenantModel, repo) -> str:
    from ..repository import read_tree

    kind = op["kind"]
    if kind == "backup":
        model.mutate_tree()
        digest = model.tree_digest()
        report = repo.backup_tree(
            read_tree(model.tree_dir), tag=f"op-{op['index']:05d}"
        )
        model.versions.append({"id": report["version_id"], "digest": digest})
        return "ok"
    if kind == "restore":
        if not model.versions:
            return "skipped"
        pick = op.get("params", {}).get("pick", "latest")
        if pick == "latest" or len(model.versions) == 1:
            row = model.versions[-1]
        else:
            row = model.rng.choice(model.versions)
        _plan, stream = repo.restore(row["id"], verify=True)
        if drain_digest(stream) != row["digest"]:
            from ..errors import RestoreError

            raise RestoreError(
                f"restored bytes of v{row['id']} diverge from backup-time digest"
            )
        return "ok"
    if kind == "verify":
        if not model.versions:
            return "skipped"
        report = repo.verify(deep=bool(op.get("params", {}).get("deep", False)))
        if not report.get("ok", False):
            from ..errors import StorageError

            raise StorageError(f"verify reported issues: {report.get('summary')}")
        return "ok"
    if kind == "delete":
        if len(model.versions) < 2:
            return "skipped"
        repo.delete_oldest()
        removed = model.versions.pop(0)
        model.deleted.append(removed["id"])
        return "ok"
    from ..errors import WorkloadError

    raise WorkloadError(f"worker cannot execute op kind {kind!r}")


def main() -> int:
    """Read one JSON job from stdin, run its ops, print results as JSON."""
    job = json.load(sys.stdin)
    models: Dict[str, TenantModel] = {}
    for t in job["tenants"]:
        spec = TenantSpec(
            name=t["name"],
            tenant_class=t["tenant_class"],
            files=t["files"],
            file_kb=t["file_kb"],
            churn=t["churn"],
        )
        models[spec.name] = TenantModel(
            spec, os.path.join(job["trees_root"], spec.name), job["seed"]
        )
    client, repo_of = _open_client(job["connect"])
    results: List[Dict] = []
    try:
        for op in job["ops"]:
            model = models[op["tenant"]]
            started = time.perf_counter()
            status, error = "ok", None
            try:
                status = _execute(op, model, repo_of(op["tenant"]))
            except ReproError as exc:
                status, error = "failed_typed", f"{type(exc).__name__}: {exc}"
            except Exception as exc:
                status, error = "failed_untyped", f"{type(exc).__name__}: {exc}"
            row = {
                "index": op["index"],
                "phase": op["phase"],
                "tenant": op["tenant"],
                "kind": op["kind"],
                "status": status,
                "seconds": round(time.perf_counter() - started, 6),
            }
            if error:
                row["error"] = error
            results.append(row)
    finally:
        client.close()
    json.dump(
        {
            "results": results,
            "models": {
                name: {"versions": model.versions, "deleted": model.deleted}
                for name, model in models.items()
            },
        },
        sys.stdout,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
