"""Multi-client execution of a compiled chaos schedule.

Tenants are partitioned round-robin across client threads; each client
executes its tenants' operations in schedule order, so the per-tenant op
sequence is deterministic (matching the per-tenant writer-lock
discipline the daemon enforces) while cross-tenant traffic genuinely
interleaves.  Every operation is timed into the ``chaos.op_seconds.*``
histograms and classified: ``ok``, ``skipped`` (precondition not met —
e.g. restore on an empty tenant), ``failed_typed`` (a
:class:`~repro.errors.ReproError` subclass: the contract every client
surface promises) or ``failed_untyped`` (anything else — an invariant
violation by itself).

Each client thread also owns the fault events pinned to its ops: a fault
is injected just before its site op runs and its recovery action (repair
from mirror, node restart, partition heal) runs just after — or never,
when the scenario says ``"recover": false`` (the negative control).

The driver keeps a :class:`TenantModel` per tenant — the expected
version list with content digests recorded at backup time — which is
what the invariant checker replays reality against.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError, RestoreError, StorageError
from ..observability import MetricsRegistry, get_registry
from ..repository import read_tree
from .deploy import Deployment
from .faults import FaultController, WireCorruptingMirror, flip_container_byte
from .scenario import FaultEvent, Schedule, ScheduledOp, TenantSpec

__all__ = ["TenantModel", "OpResult", "Driver"]


@dataclass
class OpResult:
    index: int
    phase: str
    tenant: str
    kind: str
    status: str  # ok | skipped | failed_typed | failed_untyped
    seconds: float
    error: Optional[str] = None

    def as_doc(self) -> Dict:
        doc = {
            "index": self.index,
            "phase": self.phase,
            "tenant": self.tenant,
            "kind": self.kind,
            "status": self.status,
            "seconds": round(self.seconds, 6),
        }
        if self.error:
            doc["error"] = self.error
        return doc


class TenantModel:
    """What the driver believes one tenant's repository holds.

    ``versions`` carries ``{"id", "digest"}`` rows recorded at backup
    time (digest = sha256 of the backed-up tree's concatenated bytes in
    manifest order — exactly what a full restore streams back).  The
    per-tenant ``rng`` is seeded from (scenario seed, tenant name), so
    tree contents and mutation order are reproducible.
    """

    def __init__(self, spec: TenantSpec, tree_dir: str, seed: int) -> None:
        self.spec = spec
        self.tree_dir = tree_dir
        self.rng = random.Random(f"{seed}:{spec.name}")
        self.versions: List[Dict] = []
        self.deleted: List[int] = []
        #: Version ids the mirror held after the last successful sync
        #: (None until the first replicate), plus their digests.
        self.mirror_expected: Optional[List[int]] = None
        self.mirror_digests: Dict[int, str] = {}
        #: Digest of a backup whose outcome is unknown (killed mid-op).
        self.pending: Optional[Dict] = None
        #: Version id of a delete whose outcome is unknown (the server
        #: may have committed it before the connection died).
        self.pending_delete: Optional[int] = None
        #: The last replicate attempt failed mid-sync: the mirror may
        #: legitimately hold ``*.staged`` leftovers until the next sync.
        self.mirror_dirty = False
        #: Next replicate ships one container corrupted in transit.
        self.corrupt_next_replicate = False
        self._initialized = False

    # -- source tree -----------------------------------------------------
    def mutate_tree(self) -> None:
        """Create the tree on first call; churn a subset afterwards."""
        os.makedirs(self.tree_dir, exist_ok=True)
        size = self.spec.file_kb * 1024
        if not self._initialized:
            for i in range(self.spec.files):
                self._write_file(i, size)
            self._initialized = True
            return
        churn = max(1, int(round(self.spec.churn * self.spec.files)))
        for i in sorted(self.rng.sample(range(self.spec.files), churn)):
            jitter = 0.75 + 0.5 * self.rng.random()
            self._write_file(i, max(1024, int(size * jitter)))

    def _write_file(self, index: int, size: int) -> None:
        path = os.path.join(self.tree_dir, f"f{index:02d}.bin")
        with open(path, "wb") as handle:
            handle.write(self.rng.randbytes(size))

    def tree_digest(self) -> str:
        sha = hashlib.sha256()
        for _rel, path in read_tree(self.tree_dir):
            with open(path, "rb") as handle:
                sha.update(handle.read())
        return sha.hexdigest()

    def version_ids(self) -> List[int]:
        return [v["id"] for v in self.versions]

    def digest_of(self, version_id: int) -> Optional[str]:
        for v in self.versions:
            if v["id"] == version_id:
                return v["digest"]
        return None


def drain_digest(stream) -> str:
    """Consume a restore stream, returning the sha256 of its bytes."""
    sha = hashlib.sha256()
    for block in stream:
        sha.update(block)
    return sha.hexdigest()


class Driver:
    """Execute one schedule phase at a time against a deployment."""

    def __init__(
        self,
        schedule: Schedule,
        deployment: Deployment,
        controller: FaultController,
        models: Dict[str, TenantModel],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.schedule = schedule
        self.deployment = deployment
        self.controller = controller
        self.models = models
        self.metrics = metrics if metrics is not None else get_registry()
        self.results: List[OpResult] = []
        self.fault_log: List[Dict] = []
        #: Node labels restarted during the current phase (clean-resume
        #: invariant trigger) and the lock guarding shared mutable state.
        self.restarted_this_phase: List[str] = []
        self._lock = threading.Lock()
        tenants = [t.name for t in schedule.tenants]
        clients = max(1, min(schedule.clients, len(tenants)))
        self._assignment: List[List[str]] = [
            tenants[i::clients] for i in range(clients)
        ]

    # ------------------------------------------------------------------
    def run_phase(self, phase: str) -> List[OpResult]:
        """Run every op of one phase; returns that phase's results."""
        self.restarted_this_phase = []
        phase_ops = self.schedule.phase_ops(phase)
        before = len(self.results)
        threads = []
        errors: List[BaseException] = []

        def client(my_tenants: List[str]) -> None:
            try:
                for op in phase_ops:
                    if op.tenant in my_tenants:
                        self._run_op(op)
            except BaseException as exc:  # harness bug, not workload noise
                errors.append(exc)

        for my_tenants in self._assignment:
            mine = [t for t in my_tenants if any(op.tenant == t for op in phase_ops)]
            if not mine and len(self._assignment) > 1:
                continue
            thread = threading.Thread(
                target=client, args=(my_tenants,), name=f"chaos-client", daemon=True
            )
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        self._end_of_phase(phase)
        return self.results[before:]

    def _end_of_phase(self, phase: str) -> None:
        # Disarm directives that never found a matching operation (e.g. an
        # ENOSPC pinned to a tenant that ran no further container writes) —
        # a fault must not leak into the invariant checks or the next phase.
        leftovers = self.controller.armed_count()
        if leftovers:
            self.controller.disarm_all()
            self.fault_log.append(
                {"phase": phase, "event": "disarmed_untriggered", "count": leftovers}
            )
        # Resolve backups/deletes whose outcome a kill left ambiguous.
        for tenant, model in self.models.items():
            if model.pending is not None or model.pending_delete is not None:
                self._reconcile(tenant, model)

    # ------------------------------------------------------------------
    # One operation (with its pinned faults)
    # ------------------------------------------------------------------
    def _run_op(self, op: ScheduledOp) -> None:
        model = self.models[op.tenant]
        faults = self.schedule.faults_at(op.index)
        kill_state: Dict = {}
        for fault in faults:
            self._inject(fault, op, model, kill_state)
        started = time.perf_counter()
        status, error = "ok", None
        try:
            outcome = self._execute(op, model)
            if outcome == "skipped":
                status = "skipped"
        except ReproError as exc:
            status, error = "failed_typed", f"{type(exc).__name__}: {exc}"
        except Exception as exc:
            status, error = "failed_untyped", f"{type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - started
        if op.kind == "delete" and status == "failed_typed":
            self._reconcile(op.tenant, model)
        self.metrics.inc("chaos.ops_total")
        self.metrics.inc(f"chaos.ops_{status}")
        self.metrics.observe(f"chaos.op_seconds.{op.kind}", elapsed)
        with self._lock:
            self.results.append(
                OpResult(op.index, op.phase, op.tenant, op.kind, status, elapsed, error)
            )
        for fault in faults:
            self._recover(fault, op, model, kill_state)

    # ------------------------------------------------------------------
    # Op executors
    # ------------------------------------------------------------------
    def _execute(self, op: ScheduledOp, model: TenantModel) -> str:
        if op.kind == "backup":
            return self._do_backup(op, model)
        if op.kind == "restore":
            return self._do_restore(op, model)
        if op.kind == "verify":
            return self._do_verify(op, model)
        if op.kind == "replicate":
            return self._do_replicate(op, model)
        if op.kind == "delete":
            return self._do_delete(op, model)
        if op.kind == "repair":
            return self._do_repair(op, model)
        raise StorageError(f"unknown scheduled op kind {op.kind!r}")

    def _do_backup(self, op: ScheduledOp, model: TenantModel) -> str:
        model.mutate_tree()
        digest = model.tree_digest()
        entries = read_tree(model.tree_dir)
        model.pending = {"digest": digest}
        report = self.deployment.repo(op.tenant).backup_tree(
            entries, tag=f"op-{op.index:05d}"
        )
        model.versions.append({"id": report["version_id"], "digest": digest})
        model.pending = None
        return "ok"

    def _do_restore(self, op: ScheduledOp, model: TenantModel) -> str:
        if not model.versions:
            return "skipped"
        pick = op.params.get("pick", "latest")
        if pick == "latest" or len(model.versions) == 1:
            row = model.versions[-1]
        else:
            row = model.rng.choice(model.versions)
        _plan, stream = self.deployment.repo(op.tenant).restore(
            row["id"], verify=True
        )
        digest = drain_digest(stream)
        if digest != row["digest"]:
            raise RestoreError(
                f"restored bytes of {op.tenant} v{row['id']} do not match "
                f"the driver's recorded content digest"
            )
        return "ok"

    def _do_verify(self, op: ScheduledOp, model: TenantModel) -> str:
        if not model.versions:
            return "skipped"
        report = self.deployment.repo(op.tenant).verify(
            deep=bool(op.params.get("deep", False))
        )
        if not report.get("ok", False):
            raise StorageError(
                f"verify reported issues on {op.tenant}: "
                f"{report.get('summary', 'no summary')}"
            )
        return "ok"

    def _do_replicate(self, op: ScheduledOp, model: TenantModel) -> str:
        if not model.versions:
            return "skipped"
        from ..replication.session import ReplicationSession

        target = self.deployment.mirror_target(op.tenant)
        if model.corrupt_next_replicate:
            model.corrupt_next_replicate = False
            target = WireCorruptingMirror(target, self.controller)
        try:
            ReplicationSession(
                self.deployment.tenant_root(op.tenant), target, journal=""
            ).run()
            model.mirror_expected = model.version_ids()
            model.mirror_digests = {
                v["id"]: v["digest"] for v in model.versions
            }
            model.mirror_dirty = False
        except BaseException:
            # A sync that died mid-ship may leave staged objects on the
            # mirror; they are legitimate until the next sync commits.
            model.mirror_dirty = True
            raise
        finally:
            target.close()
        return "ok"

    def _do_delete(self, op: ScheduledOp, model: TenantModel) -> str:
        if len(model.versions) < 2:
            return "skipped"
        # The server may commit the delete and then die before replying
        # (a kill's blast radius covers every in-flight op, not just the
        # victim tenant's); record the candidate so a failure reconciles.
        model.pending_delete = model.versions[0]["id"]
        self.deployment.repo(op.tenant).delete_oldest()
        removed = model.versions.pop(0)
        model.deleted.append(removed["id"])
        model.pending_delete = None
        return "ok"

    def _do_repair(self, op: ScheduledOp, model: TenantModel) -> str:
        if model.mirror_expected is None:
            return "skipped"
        self._repair_tenant(op.tenant)
        return "ok"

    def _repair_tenant(self, tenant: str) -> Dict:
        from ..replication.repair import repair_from_mirror

        mirror = self.deployment.mirror_target(tenant)
        try:
            report = repair_from_mirror(
                self.deployment.tenant_root(tenant), mirror, deep=True,
                metrics=self.metrics,
            )
        finally:
            mirror.close()
        self.deployment.invalidate(tenant)
        return report.as_dict()

    # ------------------------------------------------------------------
    # Fault injection / recovery
    # ------------------------------------------------------------------
    def _tenant_url_fragment(self, tenant: str) -> str:
        # Backend URLs embed the tenant root path; matching on the path
        # (with separators) pins a directive to exactly one tenant.
        return os.sep + tenant

    def _note(self, fault: FaultEvent, event: str, **detail) -> None:
        with self._lock:
            self.fault_log.append(
                {"kind": fault.kind, "op_index": fault.op_index,
                 "tenant": fault.tenant, "event": event, **detail}
            )

    def _inject(
        self, fault: FaultEvent, op: ScheduledOp, model: TenantModel, kill_state: Dict
    ) -> None:
        frag = self._tenant_url_fragment(op.tenant)
        if fault.kind == "enospc":
            self.controller.arm(
                "enospc", op="put", match_url=frag, match_name="container"
            )
            self._note(fault, "armed")
        elif fault.kind == "torn_write":
            self.controller.arm(
                "torn_write", op="put", match_url=frag, match_name="container"
            )
            self._note(fault, "armed")
        elif fault.kind == "latency":
            self.controller.arm(
                "latency",
                match_url=frag,
                count=int(fault.params.get("count", 6)),
                seconds=float(fault.params.get("seconds", 0.02)),
            )
            self._note(fault, "armed")
        elif fault.kind == "corrupt_transit":
            model.corrupt_next_replicate = True
            self._note(fault, "armed")
        elif fault.kind == "bitflip":
            self._inject_bitflip(fault, op, model)
        elif fault.kind == "kill_primary":
            self._inject_kill(fault, op, kill_state)
        elif fault.kind == "partition_mirror":
            self.deployment.partition_mirror()
            self.controller.note_injected("partition_mirror", tenant=op.tenant)
            self._note(fault, "injected")

    def _inject_bitflip(
        self, fault: FaultEvent, op: ScheduledOp, model: TenantModel
    ) -> None:
        """Corrupt a sealed container at rest.

        With recovery enabled the victim is drawn only from containers
        the mirror also holds, so ``repair --from-mirror`` can actually
        heal it; the negative control draws from everything, modelling
        corruption that outran replication.
        """
        root = self.deployment.tenant_root(op.tenant)
        candidates = None
        if fault.recover and model.mirror_expected is not None:
            mirror_dir = os.path.join(
                self.deployment.mirror_root(op.tenant), "containers"
            )
            try:
                mirrored = set(os.listdir(mirror_dir))
            except OSError:
                mirrored = set()
            try:
                local = set(os.listdir(os.path.join(root, "containers")))
            except OSError:
                local = set()
            candidates = sorted(
                n for n in (local & mirrored) if n.endswith(".hdsc")
            )
        try:
            if candidates is not None:
                if not candidates:
                    self._note(fault, "skipped", reason="no mirrored container")
                    return
                name = model.rng.choice(candidates)
                path = os.path.join(root, "containers", name)
                with open(path, "r+b") as handle:
                    offset = os.path.getsize(path) // 2
                    handle.seek(offset)
                    byte = handle.read(1)
                    handle.seek(offset)
                    handle.write(bytes([byte[0] ^ 0xFF]))
                self.controller.note_injected("bitflip", name=f"containers/{name}")
            else:
                flip_container_byte(root, rng=model.rng, controller=self.controller)
        except StorageError as exc:
            self._note(fault, "skipped", reason=str(exc))
            return
        self.deployment.invalidate(op.tenant)
        self._note(fault, "injected")

    def _inject_kill(
        self, fault: FaultEvent, op: ScheduledOp, kill_state: Dict
    ) -> None:
        """SIGKILL the tenant's primary mid-operation.

        A trigger directive fires on the tenant's next container write
        (so a backup dies with a container genuinely in flight); a killer
        thread waits on that trigger — with a timeout fallback so the
        fault still happens when the site op never writes a container.
        """
        trigger = threading.Event()
        done = threading.Event()

        def killer() -> None:
            trigger.wait(timeout=2.0)
            try:
                label = self.deployment.kill_primary(fault.tenant)
                kill_state["label"] = label
                self.controller.note_injected(
                    "kill_primary", tenant=fault.tenant, node=label
                )
                self._note(fault, "injected", node=label)
            except ReproError as exc:
                self._note(fault, "skipped", reason=str(exc))
            finally:
                done.set()

        kill_state["done"] = done
        self.controller.arm(
            "trigger",
            op="put",
            match_url=self._tenant_url_fragment(fault.tenant),
            match_name="container",
            callback=lambda _url, _name: trigger.set(),
        )
        threading.Thread(target=killer, name="chaos-killer", daemon=True).start()

    def _recover(
        self, fault: FaultEvent, op: ScheduledOp, model: TenantModel, kill_state: Dict
    ) -> None:
        if fault.kind == "bitflip":
            if fault.recover:
                try:
                    report = self._repair_tenant(op.tenant)
                    self._note(fault, "repaired", report=report)
                except ReproError as exc:
                    self._note(fault, "repair_failed", reason=str(exc))
        elif fault.kind == "kill_primary":
            done = kill_state.get("done")
            if done is not None:
                done.wait(timeout=30.0)
            label = kill_state.get("label")
            if fault.recover and label is not None:
                self.deployment.restart(label)
                with self._lock:
                    self.restarted_this_phase.append(label)
                self._note(fault, "restarted", node=label)
            self._reconcile(op.tenant, model)
        elif fault.kind == "partition_mirror":
            if fault.recover:
                self.deployment.heal_mirror()
                self._note(fault, "healed")

    # ------------------------------------------------------------------
    def _reconcile(self, tenant: str, model: TenantModel) -> None:
        """Resolve ops whose outcome a connection loss left ambiguous.

        An interrupted backup either committed (its version id appears on
        the repository) or rolled back (no trace); the intended content
        digest was recorded before the attempt, so a committed survivor
        gets its digest attached.  An interrupted delete either removed
        the oldest version or did nothing — the repository is authority
        for exactly that one version id.
        """
        if model.pending is None and model.pending_delete is None:
            return
        try:
            rows = self.deployment.repo(tenant).versions()
        except ReproError:
            return  # still unreachable; the invariant checker will report
        actual = [row["version_id"] for row in rows]
        if model.pending_delete is not None:
            if (
                model.versions
                and model.versions[0]["id"] == model.pending_delete
                and model.pending_delete not in actual
            ):
                removed = model.versions.pop(0)
                model.deleted.append(removed["id"])
            model.pending_delete = None
        if model.pending is not None:
            known = set(model.version_ids())
            new = [vid for vid in actual if vid not in known]
            if len(new) == 1:
                model.versions.append(
                    {"id": new[0], "digest": model.pending["digest"]}
                )
            model.pending = None
