"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
