"""Figure 3 — chunk counts per version tag (the §3 observation).

For each dataset, replays the infinite-buffer tagging experiment and prints
the per-tag series.  The paper's shapes to verify:

* kernel / gcc / fslhomes (3a-3c): a tag's count drops sharply one version
  after it stops being current, then plateaus;
* macos (3d): the drop spreads over two versions.
"""

import pytest

from common import all_presets, emit
from repro.analysis import format_observation_table, run_observation
from repro.workloads import load_preset

VERSIONS = 8
CHUNKS = 2000


@pytest.mark.parametrize("preset", all_presets())
def test_fig3_tag_series(benchmark, preset):
    workload = load_preset(preset, versions=VERSIONS, chunks_per_version=CHUNKS)

    result = benchmark.pedantic(
        lambda: run_observation(workload.versions()), rounds=1, iterations=1
    )

    emit(f"\nFigure 3 — {preset}: chunks per version tag after each version")
    emit(format_observation_table(result, max_tags=6))
    decay = result.decay_step(1)
    emit(f"V1 tag decays for {decay} version(s) then plateaus "
         f"(paper: {'2 — macos' if preset == 'macos' else '1'})")

    # Shape assertions.
    series = result.tag_series(1)
    assert series[1] < series[0]  # sharp drop after the next version
    expected_decay = 2 if preset == "macos" else 1
    assert decay == expected_decay
    # Plateau: the count after the decay window never drops much further.
    settled = series[expected_decay]
    assert min(series[expected_decay:]) >= settled * 0.95
