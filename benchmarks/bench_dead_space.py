"""Dead-space accumulation under retention churn (a §5.5 consequence).

A backup service that expires old versions continuously must reclaim the
space of dead chunks.  The traditional pipeline faces a dial:

* never copy (GC threshold 0): deletions are cheap but dead bytes pile up
  inside mixed containers forever;
* always copy (threshold 1): space stays tight but every deletion rewrites
  containers and recipes.

HiDeStore sits off the dial entirely: cold sets are physically segregated
per version, so expiry reclaims exactly the dead bytes by whole-container
deletion — zero dead space AND zero copying.  This bench runs a sliding
retention window over the kernel workload and reports all three.
"""

import pytest

from common import CONTAINER, emit, run_scheme, table
from repro.analysis import archival_population
from repro.pipeline import GCDeletionManager, build_scheme
from repro.workloads import load_preset

VERSIONS = 20
WINDOW = 8


def _traditional(threshold):
    system = build_scheme(
        "ddfs", container_size=CONTAINER,
        index_kwargs=dict(cache_containers=16),
    )
    gc = GCDeletionManager(system, utilization_threshold=threshold)
    copied = 0
    for stream in load_preset("kernel", versions=VERSIONS).versions():
        system.backup(stream)
        while len(system.version_ids()) > WINDOW:
            stats = gc.delete_version(system.version_ids()[0])
            copied += stats.bytes_copied
    population = archival_population(system)
    return population, copied


def _hidestore():
    system = build_scheme("hidestore", container_size=CONTAINER)
    for stream in load_preset("kernel", versions=VERSIONS).versions():
        system.backup(stream)
        while (
            len(system.version_ids()) > WINDOW
            and system.version_ids()[0] <= system.demotion_horizon
        ):
            system.delete_oldest()
    population = archival_population(system)
    return population, system


def test_dead_space_after_retention_churn(benchmark):
    results = {}

    def sweep():
        results["gc-never-copy"] = _traditional(0.0)
        results["gc-always-copy"] = _traditional(1.0)
        population, system = _hidestore()
        results["hidestore"] = (population, 0)
        results["_hds_system"] = system
        return len(results)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in ("gc-never-copy", "gc-always-copy", "hidestore"):
        population, copied = results[name]
        rows.append([
            name,
            population.count,
            f"{population.dead_fraction:.1%}",
            population.dead_bytes,
            copied,
        ])
    table(
        ["strategy", "containers", "dead fraction", "dead bytes", "bytes copied"],
        rows,
        title=f"Dead space after a {WINDOW}-version retention window over {VERSIONS} backups",
    )
    never, always, hds = (results[k][0] for k in ("gc-never-copy", "gc-always-copy", "hidestore"))
    emit("HiDeStore: per-version cold segregation needs neither dead space "
         "nor copy traffic.")
    assert never.dead_bytes > 0  # cheap GC leaks space
    assert results["gc-always-copy"][1] > 0  # tight GC pays copies
    assert hds.dead_bytes == 0
    assert results["hidestore"][1] == 0
