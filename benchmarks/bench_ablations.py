"""Ablations over the design choices DESIGN.md calls out.

1. Compaction threshold: hot-set density vs compaction work (§4.2).
2. History depth on the macos-like workload: dedup ratio vs scratch memory
   (§4.1's extra hash table).
3. Capping level: restore speed vs dedup-ratio loss (the baseline's knob).
4. FAA area size: restore reads vs memory, on a HiDeStore layout.
5. Restore algorithm shoot-out on identical fragmented layouts.
"""

import pytest

from common import CONTAINER, emit, run_scheme, table
from repro.core.hidestore import HiDeStore
from repro.metrics import exact_dedup_ratio
from repro.pipeline import build_scheme
from repro.restore import (
    ALACCRestore,
    ChunkCacheRestore,
    ContainerCacheRestore,
    FAARestore,
    OptimalContainerCacheRestore,
)
from repro.units import KiB, MiB
from repro.workloads import load_preset

VERSIONS = 16


def test_ablation_compaction_threshold(benchmark):
    rows = []

    def sweep():
        for threshold in (0.0, 0.3, 0.5, 0.7, 0.9):
            system = HiDeStore(container_size=CONTAINER, compaction_threshold=threshold)
            for stream in load_preset("kernel", versions=VERSIONS).versions():
                system.backup(stream)
            newest = system.version_ids()[-1]
            sf = system.restore(newest).speed_factor
            rows.append([
                f"{threshold:.1f}",
                f"{sf:.3f}",
                system.pool.container_count(),
                system.pool.stats.compactions,
                f"{system.pool.stats.compact_seconds * 1000:.1f} ms",
            ])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["threshold", "sf(newest)", "active containers", "compactions", "compact time"],
        rows,
        title="Ablation — compaction threshold (kernel)",
    )
    # Higher thresholds keep the hot set denser (fewer active containers).
    assert int(rows[-1][2]) <= int(rows[0][2])


def test_ablation_history_depth_macos(benchmark):
    rows = []
    exact = exact_dedup_ratio(load_preset("macos", versions=10).versions())

    def sweep():
        for depth in (1, 2, 3):
            system = HiDeStore(container_size=CONTAINER, history_depth=depth)
            for stream in load_preset("macos", versions=10).versions():
                system.backup(stream)
            rows.append([
                depth,
                f"{system.dedup_ratio:.4f}",
                system.transient_cache_bytes,
            ])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["history depth", "dedup ratio", "T1/T2 bytes"],
        rows + [["exact", f"{exact:.4f}", "-"]],
        title="Ablation — history depth on macos (§4.1's extra hash table)",
    )
    assert float(rows[1][1]) > float(rows[0][1])  # depth 2 recovers skips
    # rows hold 4-decimal renderings; allow that rounding.
    assert abs(float(rows[1][1]) - exact) < 1e-3
    assert int(rows[1][2]) > int(rows[0][2])  # at a memory cost


def test_ablation_capping_level(benchmark):
    rows = []

    def sweep():
        for cap in (4, 8, 16, 32, 64):
            system = build_scheme(
                "capping",
                container_size=CONTAINER,
                rewriter_kwargs=dict(cap=cap, segment_bytes=4 * MiB),
                index_kwargs=dict(cache_containers=16),
            )
            for stream in load_preset("kernel", versions=VERSIONS).versions():
                system.backup(stream)
            newest = system.version_ids()[-1]
            rows.append([
                cap,
                f"{system.dedup_ratio:.4f}",
                f"{system.restore(newest).speed_factor:.3f}",
            ])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["cap", "dedup ratio", "sf(newest)"],
        rows,
        title="Ablation — capping level (restore speed vs ratio loss)",
    )
    # Tighter caps trade dedup ratio for restore speed.
    assert float(rows[0][1]) < float(rows[-1][1])
    assert float(rows[0][2]) >= float(rows[-1][2])


def test_ablation_greedy_vs_classic_capping(benchmark):
    """Submodular (byte-coverage, ref [34]) vs count-ranked capping."""
    rows = []

    def sweep():
        for cap in (8, 16, 32):
            for name, kwargs in (
                ("capping", dict(cap=cap, segment_bytes=4 * MiB)),
                ("greedy-capping", dict(cap=cap, segment_bytes=4 * MiB,
                                        min_coverage_bytes=32 * 1024)),
            ):
                system = build_scheme(
                    name,
                    container_size=CONTAINER,
                    rewriter_kwargs=kwargs,
                    index_kwargs=dict(cache_containers=16),
                )
                for stream in load_preset("kernel", versions=VERSIONS).versions():
                    system.backup(stream)
                newest = system.version_ids()[-1]
                rows.append([
                    name,
                    cap,
                    f"{system.dedup_ratio:.4f}",
                    f"{system.restore(newest).speed_factor:.3f}",
                ])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["variant", "cap", "dedup ratio", "sf(newest)"],
        rows,
        title="Ablation — greedy (submodular) vs classic capping",
    )
    # At equal caps, the greedy variant must not lose more ratio.
    by_key = {(r[0], r[1]): float(r[2]) for r in rows}
    for cap in (8, 16, 32):
        assert by_key[("greedy-capping", cap)] >= by_key[("capping", cap)] - 0.02


def test_ablation_faa_area(benchmark):
    system = run_scheme("baseline", "kernel", versions=VERSIONS)
    newest = system.version_ids()[-1]
    rows = []

    def sweep():
        for area in (2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB):
            sf = system.restore(newest, restorer=FAARestore(area_bytes=area)).speed_factor
            rows.append([f"{area // MiB} MiB", f"{sf:.3f}"])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(["FAA area", "sf(newest)"], rows, title="Ablation — FAA area size (baseline layout)")
    assert float(rows[-1][1]) >= float(rows[0][1])


def test_ablation_index_family(benchmark):
    """All implemented fingerprint indexes on one workload: the design space
    around Figures 9/10 (exact vs near-exact, RAM vs disk vs flash)."""
    configs = {
        "exact": {},
        "ddfs": dict(index_kwargs=dict(cache_containers=16)),
        "blc": dict(index_kwargs=dict(cache_pages=8)),
        "chunkstash": {},
        "sparse": {},
        "silo": {},
        "binning": {},
        "hidestore": {},
    }
    rows = []

    def sweep():
        for name, kwargs in configs.items():
            system = build_scheme(name, container_size=CONTAINER, **kwargs)
            for stream in load_preset("kernel", versions=VERSIONS).versions():
                system.backup(stream)
            report = system.report
            extra = ""
            if name == "chunkstash":
                extra = f"{system.index.flash_lookups} flash"
            rows.append([
                name,
                f"{report.dedup_ratio:.4f}",
                f"{report.lookups_per_gb:.0f}",
                f"{report.index_bytes_per_mb:.1f}",
                extra,
            ])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["index", "dedup ratio", "lkp/GB", "idx B/MB", "notes"],
        rows,
        title="Ablation — the fingerprint-index design space (kernel)",
    )
    by_name = {r[0]: r for r in rows}
    # Exact family all tie on ratio; HiDeStore matches them.
    assert by_name["hidestore"][1] == by_name["exact"][1] == by_name["ddfs"][1]


def test_ablation_restore_algorithms_on_same_layout(benchmark):
    """All restore algorithms over the identical fragmented layout."""
    system = run_scheme("baseline", "kernel", versions=VERSIONS)
    newest = system.version_ids()[-1]
    budget = 8 * MiB
    algorithms = {
        "container-lru": ContainerCacheRestore(cache_containers=budget // CONTAINER),
        "chunk-lru": ChunkCacheRestore(cache_bytes=budget),
        "faa": FAARestore(area_bytes=budget),
        "alacc": ALACCRestore(
            total_bytes=budget, lookahead_bytes=budget,
            min_faa_bytes=2 * MiB, step_bytes=1 * MiB,
        ),
        "optimal": OptimalContainerCacheRestore(cache_containers=budget // CONTAINER),
    }
    rows = []

    def sweep():
        for name, algorithm in algorithms.items():
            result = system.restore(newest, restorer=algorithm)
            rows.append([name, result.container_reads, f"{result.speed_factor:.3f}"])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["algorithm", "container reads", "speed factor"],
        rows,
        title=f"Ablation — restore algorithms, same layout, {budget // MiB} MiB budget",
    )
    reads = {row[0]: int(row[1]) for row in rows}
    assert reads["optimal"] <= reads["container-lru"]
    assert reads["alacc"] <= reads["faa"] * 1.05
