"""Benchmark regression gate: compare fresh BENCH_*.json against baselines.

CI runs the restore/ingest throughput benchmarks with
``BENCH_RESULTS_DIR`` set, then runs this script::

    python benchmarks/check_regression.py --results /tmp/smoke

Each fresh ``BENCH_<name>.json`` is compared against the committed
``benchmarks/baselines/BENCH_<name>.json``.  Only the **dimensionless**
metrics are gated (parallel-over-serial speedups): raw MB/s varies with
the runner's hardware, but a speedup is a ratio of two timings taken on
the same machine in the same run, so a >15% drop means the pipelining
itself regressed, not the runner.  Exit status 1 on any regression.

Run with ``--update`` locally to refresh the committed baselines from a
results directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, Tuple

#: Maximum tolerated relative drop in any gated metric (satellite: >15%
#: regression in restore/ingest throughput fails CI).
MAX_REGRESSION = 0.15

#: Gated metrics per benchmark document: dot-paths into the JSON.
#: All are speedup ratios — dimensionless, hardware-independent.
GATED_METRICS = {
    "restore_throughput_local": ["speedup_p50"],
    "restore_throughput_daemon": ["speedup_p50"],
    "restore_throughput_s3": ["speedup_p50"],
    "ingest_throughput": ["speedup_w4"],
    # O(delta) replication contract: incremental syncs must stay small
    # relative to the seed sync taken in the same run.
    "replication": ["seed_over_incremental_shipped"],
    # Sharded-cluster aggregate scaling (3 daemons over 1) and the
    # concurrent-tenant scaling of a single daemon.  Both are same-run
    # timing ratios, so hardware drops out; note the cluster ratio is
    # core-count-bound — baselines must come from a comparable runner.
    "cluster": ["speedup_3x"],
    "server_throughput": ["speedup_concurrent"],
    # cluster_failover's failover_write_seconds is deliberately NOT in
    # this table: it is an absolute, hardware-dependent wall-clock where
    # lower is better — the >15% drop rule would invert.  It is gated by
    # CEILING_METRICS below instead.
}

#: Absolute upper bounds, checked against the fresh result alone (no
#: baseline ratio).  For lower-is-better wall-clocks the speedup-drop
#: rule inverts, so they get a generous hard ceiling; correctness counts
#: (invariant violations) get a ceiling of zero — any violation fails.
CEILING_METRICS = {
    "cluster_failover": {"failover_write_seconds": 30.0},
    "chaos": {"invariant_violations": 0.0, "ops_failed_untyped": 0.0},
}

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines")


def _lookup(doc: Dict, dotted: str) -> float:
    node = doc
    for key in dotted.split("."):
        node = node[key]
    return float(node)


def iter_pairs(results_dir: str) -> Iterator[Tuple[str, Dict, Dict]]:
    """(name, fresh_doc, baseline_doc) for every gated fresh result."""
    for fname in sorted(os.listdir(results_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        name = fname[len("BENCH_") : -len(".json")]
        if name not in GATED_METRICS:
            continue
        baseline_path = os.path.join(BASELINE_DIR, fname)
        if not os.path.exists(baseline_path):
            print(f"note: no baseline for {name}; skipping (commit one "
                  f"with --update)")
            continue
        with open(os.path.join(results_dir, fname), encoding="utf-8") as handle:
            fresh = json.load(handle)
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        yield name, fresh, baseline


def check_ceilings(results_dir: str) -> Tuple[int, list]:
    """Gate fresh results against CEILING_METRICS; returns (checked, failures)."""
    failures = []
    checked = 0
    for fname in sorted(os.listdir(results_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        name = fname[len("BENCH_") : -len(".json")]
        ceilings = CEILING_METRICS.get(name)
        if not ceilings:
            continue
        with open(os.path.join(results_dir, fname), encoding="utf-8") as handle:
            fresh = json.load(handle)
        for metric, ceiling in sorted(ceilings.items()):
            try:
                value = _lookup(fresh, metric)
            except (KeyError, TypeError):
                failures.append(f"{name}: fresh result lacks metric {metric}")
                continue
            checked += 1
            status = "OK"
            if value > ceiling:
                status = "OVER CEILING"
                failures.append(
                    f"{name}.{metric}: {value:.3f} exceeds the hard "
                    f"ceiling {ceiling:.3f}"
                )
            print(f"{status:>12}  {name}.{metric}: {value:.3f} "
                  f"(ceiling {ceiling:.3f})")
    return checked, failures


def check(results_dir: str) -> int:
    failures = []
    checked = 0
    for name, fresh, baseline in iter_pairs(results_dir):
        for metric in GATED_METRICS[name]:
            try:
                base_value = _lookup(baseline, metric)
            except (KeyError, TypeError):
                print(f"note: baseline {name} lacks {metric}; skipping")
                continue
            try:
                new_value = _lookup(fresh, metric)
            except (KeyError, TypeError):
                failures.append(f"{name}: fresh result lacks metric {metric}")
                continue
            checked += 1
            drop = (base_value - new_value) / base_value if base_value else 0.0
            status = "OK"
            if drop > MAX_REGRESSION:
                status = "REGRESSION"
                failures.append(
                    f"{name}.{metric}: {new_value:.3f} vs baseline "
                    f"{base_value:.3f} ({drop:.0%} drop > {MAX_REGRESSION:.0%})"
                )
            print(
                f"{status:>10}  {name}.{metric}: "
                f"{new_value:.3f} (baseline {base_value:.3f}, "
                f"{'-' if drop > 0 else '+'}{abs(drop):.1%})"
            )
    ceiling_checked, ceiling_failures = check_ceilings(results_dir)
    checked += ceiling_checked
    failures.extend(ceiling_failures)
    if not checked:
        print("error: no gated benchmark results found to compare", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} gated metrics pass "
          f"(ratios within {MAX_REGRESSION:.0%} of baseline, ceilings held)")
    return 0


def update(results_dir: str) -> int:
    os.makedirs(BASELINE_DIR, exist_ok=True)
    copied = 0
    for fname in sorted(os.listdir(results_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        if fname[len("BENCH_") : -len(".json")] not in GATED_METRICS:
            continue
        with open(os.path.join(results_dir, fname), encoding="utf-8") as handle:
            doc = json.load(handle)
        with open(os.path.join(BASELINE_DIR, fname), "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {fname}")
        copied += 1
    if not copied:
        print("error: no gated BENCH_*.json files found", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default=".",
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--update", action="store_true",
                        help="refresh committed baselines from --results")
    args = parser.parse_args(argv)
    if args.update:
        return update(args.results)
    return check(args.results)


if __name__ == "__main__":
    raise SystemExit(main())
