"""Figure 11 — restore performance (speed factor) per backup version.

Per dataset, prints the speed factor (MB restored per container read) of
every stored version under: the no-rewrite baseline, Capping, FBW, ALACC
(FBW rewriting + ALACC cache) and HiDeStore.

Paper shape: HiDeStore is the best on the NEW versions (up to ~1.6x ALACC)
and the worst on old ones; the baseline's curve decays with version number;
rewriting schemes sit in between.  Absolute speed factors top out at 0.5
(512 KiB containers) instead of the paper's 4.0 (4 MiB) — compare ratios.
"""

import pytest

from common import all_presets, emit, run_scheme, table

SCHEMES = ["baseline", "capping", "fbw", "alacc", "hidestore"]


@pytest.mark.parametrize("preset", all_presets())
def test_fig11_speed_factor_per_version(benchmark, preset):
    systems = {}

    def run_all():
        for scheme in SCHEMES:
            systems[scheme] = run_scheme(scheme, preset)
        return len(systems)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    versions = systems["baseline"].version_ids()
    sample = [v for v in versions if v % 4 == 0 or v in (versions[0], versions[-1])]
    speed = {s: {} for s in SCHEMES}
    for scheme in SCHEMES:
        for version in sample:
            speed[scheme][version] = systems[scheme].restore(version).speed_factor

    table(
        ["version"] + SCHEMES,
        [
            [f"v{v}"] + [f"{speed[s][v]:.3f}" for s in SCHEMES]
            for v in sample
        ],
        title=f"Figure 11 — speed factor, MB/container-read ({preset})",
    )

    newest = versions[-1]
    gain = speed["hidestore"][newest] / max(1e-9, speed["alacc"][newest])
    emit(f"HiDeStore vs ALACC on the newest version: {gain:.2f}x "
         f"(paper: up to 1.6x)")

    # Shape assertions.
    assert speed["hidestore"][newest] > speed["baseline"][newest]
    assert speed["hidestore"][newest] > speed["capping"][newest]
    assert speed["hidestore"][newest] > speed["alacc"][newest]
    # HiDeStore sacrifices the oldest version.
    oldest = versions[0]
    assert speed["hidestore"][oldest] <= speed["baseline"][oldest]
    # The baseline decays toward new versions (classic fragmentation).
    assert speed["baseline"][newest] < speed["baseline"][oldest]
    # HiDeStore improves toward the newest version.
    assert speed["hidestore"][newest] > speed["hidestore"][oldest]
