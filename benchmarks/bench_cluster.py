"""Cluster aggregate throughput: 1 daemon vs 3 sharded daemons.

Spawns real daemon *processes* (``ClusterSupervisor`` — the same shape
``hidestore cluster serve`` deploys; in-process threads would share one
GIL and measure nothing) and drives six tenants through the client-side
router (:class:`~repro.cluster.ClusterClient`):

* **1 daemon** — all six tenants hash to the only node;
* **3 daemons** — tenants spread across the ring (the bench picks tenant
  names that place two per node, so the comparison measures scaling,
  not placement luck).

Each tenant backs up VERSIONS churned versions concurrently with the
others, then restores the newest one and checks the byte count.  The
aggregate backup+restore throughput ratio is reported as ``speedup_3x``
in ``BENCH_cluster.json``; sharding is CPU scaling, so the >=
MIN_SPEEDUP assertion only arms on runners with >= 4 cores (a 1-core box
can only timeslice three daemons, not run them).
"""

import os
import random
import threading
import time

from common import emit, table, write_bench_json
from repro.cluster import ClusterClient, ClusterMap, ClusterSupervisor, NodeSpec
from repro.units import MiB

#: Tenants driven concurrently (two per node in the 3-daemon scenario).
TENANTS = 6

#: Versions per tenant and logical bytes per version.
VERSIONS = 2
VERSION_BYTES = 4 * MiB

#: Fraction of each version's bytes rewritten from the previous one.
CHURN = 0.25

#: Required 3-daemon/1-daemon aggregate speedup — only asserted on
#: machines with enough cores for three daemons to actually run in
#: parallel (ISSUE acceptance: >= 1.8x).
MIN_SPEEDUP = 1.8
MIN_CORES_FOR_ASSERT = 4


def _versions_for(seed):
    rng = random.Random(seed)
    base = bytearray(rng.randbytes(VERSION_BYTES))
    streams = []
    for _ in range(VERSIONS):
        streams.append(bytes(base))
        edit = rng.randrange(0, VERSION_BYTES // 2)
        span = int(VERSION_BYTES * CHURN)
        base[edit : edit + span] = rng.randbytes(span)
    return streams


def _balanced_tenants(cmap):
    """TENANTS names placed evenly (TENANTS/len(nodes) per node)."""
    per_node = TENANTS // len(cmap.nodes)
    picked, count = [], {node.name: 0 for node in cmap.nodes}
    for i in range(10_000):
        name = f"tenant-{i}"
        home = cmap.primary(name).name
        if count[home] < per_node:
            count[home] += 1
            picked.append(name)
            if len(picked) == TENANTS:
                return picked
    raise AssertionError("could not balance tenants over the ring")


def _drive_backup(client, tenant, streams):
    repo = client.repo(tenant)
    for i, payload in enumerate(streams):
        plan = [(f"stream-{i}.bin", len(payload))]
        repo.backup_blocks(iter([payload]), plan, tag=f"v{i + 1}")


def _drive_restore(client, tenant, expected_bytes):
    _plan, data = client.repo(tenant).restore(VERSIONS)
    got = sum(len(block) for block in data)
    assert got == expected_bytes, f"{tenant}: restored {got} != {expected_bytes}"


def _concurrently(work):
    """Run the (fn, args) list on one thread each; wall-clock seconds."""
    threads = [threading.Thread(target=fn, args=args) for fn, args in work]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - started


def _run_scenario(root, nodes, tenants, datasets):
    """Backup + restore all tenants against an N-daemon cluster."""
    specs = [
        NodeSpec(f"n{i + 1}", "127.0.0.1:0", os.path.join(root, f"n{i + 1}"))
        for i in range(nodes)
    ]
    from repro.cluster import assign_ports

    cmap = assign_ports(ClusterMap(specs, replicas=1))
    map_path = os.path.join(root, "cluster.json")
    cmap.save(map_path)
    with ClusterSupervisor(cmap, map_path):
        with ClusterClient(
            [n.address for n in cmap.nodes], cluster_map=cmap, pool_size=TENANTS
        ) as client:
            backup_s = _concurrently(
                [(_drive_backup, (client, t, d)) for t, d in zip(tenants, datasets)]
            )
            restore_s = _concurrently(
                [
                    (_drive_restore, (client, t, len(d[-1])))
                    for t, d in zip(tenants, datasets)
                ]
            )
    return backup_s, restore_s


def test_cluster_aggregate_scaling(benchmark, tmp_path):
    # Place tenants with the 3-node map (names are what the ring hashes,
    # so the same names all land on the lone node of the 1-node map).
    tri_map = ClusterMap(
        [NodeSpec(f"n{i}", f"h:{i}") for i in (1, 2, 3)], replicas=1
    )
    tenants = _balanced_tenants(tri_map)
    datasets = [_versions_for(seed) for seed in range(TENANTS)]
    logical = sum(len(s) for d in datasets for s in d)
    restored = sum(len(d[-1]) for d in datasets)
    results = {}

    def run_all():
        results["one"] = _run_scenario(str(tmp_path / "one"), 1, tenants, datasets)
        results["three"] = _run_scenario(str(tmp_path / "three"), 3, tenants, datasets)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    doc = {"tenants": TENANTS, "versions": VERSIONS,
           "version_bytes": VERSION_BYTES, "cpu_count": os.cpu_count()}
    rows = []
    for key, label in (("one", "1 daemon"), ("three", "3 daemons")):
        backup_s, restore_s = results[key]
        doc[key] = {
            "backup_seconds": backup_s,
            "restore_seconds": restore_s,
            "backup_mbps": logical / backup_s / MiB,
            "restore_mbps": restored / restore_s / MiB,
        }
        rows.append(
            [
                label,
                f"{logical / MiB:.0f} MB",
                f"{doc[key]['backup_mbps']:.1f} MB/s",
                f"{doc[key]['restore_mbps']:.1f} MB/s",
            ]
        )
    table(
        ["scenario", "logical backup", "aggregate ingest", "aggregate restore"],
        rows,
        title=(
            f"Sharded cluster — {TENANTS} tenants x {VERSIONS} versions x "
            f"{VERSION_BYTES / MiB:.0f} MB, {CHURN:.0%} churn"
        ),
    )

    one = results["one"][0] + results["one"][1]
    three = results["three"][0] + results["three"][1]
    doc["speedup_backup"] = results["one"][0] / results["three"][0]
    doc["speedup_restore"] = results["one"][1] / results["three"][1]
    doc["speedup_3x"] = one / three
    write_bench_json("cluster", doc)
    emit(
        f"3-daemon/1-daemon aggregate speedup: {doc['speedup_3x']:.2f}x "
        f"(backup {doc['speedup_backup']:.2f}x, restore "
        f"{doc['speedup_restore']:.2f}x, {os.cpu_count()} cores)"
    )

    if (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        assert doc["speedup_3x"] >= MIN_SPEEDUP, (
            f"3-daemon aggregate speedup {doc['speedup_3x']:.2f}x below "
            f"{MIN_SPEEDUP}x"
        )
    else:
        emit(
            f"(speedup floor not asserted: {os.cpu_count()} core(s) < "
            f"{MIN_CORES_FOR_ASSERT})"
        )


# ----------------------------------------------------------------------
# Failover write availability: SIGKILL the primary, time the next write
# ----------------------------------------------------------------------

#: Health-probe settings for the failover scenario — aggressive so the
#: detection window dominates neither the bench nor CI wall clock.
FAILOVER_PROBE_INTERVAL = 0.25
FAILOVER_PROBE_FAILURES = 2
FAILOVER_PROBE_TIMEOUT = 1.0


def test_failover_write_availability(benchmark, tmp_path):
    """Kill a tenant's primary daemon mid-deployment and measure how long
    the very next ``backup`` takes to land — detection, promotion, deep
    verify and the router's map-refresh retry included.  Reported as
    ``failover_write_seconds`` in ``BENCH_cluster_failover.json``."""
    root = str(tmp_path / "failover")
    specs = [
        NodeSpec(f"n{i + 1}", "127.0.0.1:0", os.path.join(root, f"n{i + 1}"))
        for i in range(3)
    ]
    from repro.cluster import assign_ports

    cmap = assign_ports(ClusterMap(specs, replicas=2))
    map_path = os.path.join(root, "cluster.json")
    os.makedirs(root, exist_ok=True)
    cmap.save(map_path)

    tenant = "failover-tenant"
    streams = _versions_for(seed=99)
    results = {}

    def run_failover():
        with ClusterSupervisor(
            cmap, map_path,
            probe_interval=FAILOVER_PROBE_INTERVAL,
            probe_failures=FAILOVER_PROBE_FAILURES,
            probe_timeout=FAILOVER_PROBE_TIMEOUT,
        ) as supervisor:
            with ClusterClient(
                [n.address for n in cmap.nodes], cluster_map=cmap,
                write_retry_timeout=60.0,
            ) as client:
                repo = client.repo(tenant)
                plan = [("stream-0.bin", len(streams[0]))]
                repo.backup_blocks([streams[0]], plan, tag="v1")
                primary = cmap.primary(tenant)
                # Replicate v1 to the successor, then SIGKILL the primary.
                from repro.client import RemoteRepository

                seeder = RemoteRepository(primary.address, tenant)
                try:
                    seeder.cluster_sync(tenant)
                finally:
                    seeder.close()
                supervisor.kill_node(primary.name)

                started = time.perf_counter()
                plan = [("stream-1.bin", len(streams[1]))]
                report = repo.backup_blocks([streams[1]], plan, tag="v2")
                elapsed = time.perf_counter() - started
                assert report["version_id"] == 2

                fresh = client.refresh()
                assert primary.name in fresh.down_names()
                restored = bytearray()
                _plan, data = repo.restore(2)
                for block in data:
                    restored += block
                assert bytes(restored) == streams[1]
                results["failover_write_seconds"] = elapsed
        return elapsed

    benchmark.pedantic(run_failover, rounds=1, iterations=1)

    detection_floor = FAILOVER_PROBE_FAILURES * FAILOVER_PROBE_INTERVAL
    doc = {
        "nodes": 3,
        "replicas": 2,
        "version_bytes": VERSION_BYTES,
        "probe_interval": FAILOVER_PROBE_INTERVAL,
        "probe_failures": FAILOVER_PROBE_FAILURES,
        "probe_timeout": FAILOVER_PROBE_TIMEOUT,
        "detection_floor_seconds": detection_floor,
        "failover_write_seconds": results["failover_write_seconds"],
        "cpu_count": os.cpu_count(),
    }
    write_bench_json("cluster_failover", doc)
    emit(
        f"write availability after primary SIGKILL: "
        f"{doc['failover_write_seconds']:.2f}s to the next landed backup "
        f"(probe floor {detection_floor:.2f}s, no operator action)"
    )
    # The write must land via automatic promotion, comfortably inside the
    # router's retry budget; 30s is a hang, not a failover.
    assert doc["failover_write_seconds"] < 30.0
