"""§5.5 — deletion cost: GC-free expiry vs a traditional GC estimate.

HiDeStore deletes an expired version by dropping whole archival containers
(no chunk detection, no copying).  A traditional system must (a) determine
which chunks are exclusive to the expired version — touching every retained
recipe — and (b) copy the survivors out of partially dead containers.  The
benchmark times HiDeStore's real deletion and a faithful simulation of the
traditional mark phase, and reports both.
"""

import pytest

from common import CONTAINER, emit, run_scheme
from repro.pipeline import build_scheme
from repro.workloads import load_preset

VERSIONS = 16


def test_deletion_is_gc_free(benchmark):
    def delete_all():
        system = run_scheme("hidestore", "kernel", versions=VERSIONS)
        system.retire()
        writes_before = system.io.container_writes
        reclaimed = 0
        deleted = 0
        while system.version_ids():
            stats = system.delete_oldest()
            reclaimed += stats.bytes_reclaimed
            deleted += 1
        return system, reclaimed, deleted, writes_before

    system, reclaimed, deleted, writes_before = benchmark.pedantic(
        delete_all, rounds=1, iterations=1
    )
    emit(f"\n§5.5 — expired {deleted} versions, reclaimed {reclaimed} bytes "
         f"in {system.deletion.stats.delete_seconds * 1000:.2f} ms total")
    # No GC traffic: deletion writes nothing.
    assert system.io.container_writes == writes_before
    assert len(system.containers) == 0


def test_traditional_gc_deletion_for_comparison(benchmark):
    """The foil: full mark-sweep-copy deletion on the traditional pipeline
    (scan every retained recipe, copy live chunks out of mixed containers,
    rewrite every recipe referencing a moved chunk)."""
    from repro.pipeline import GCDeletionManager

    def delete_all():
        system = build_scheme("ddfs", container_size=CONTAINER)
        for stream in load_preset("kernel", versions=VERSIONS).versions():
            system.backup(stream)
        gc = GCDeletionManager(system, utilization_threshold=0.8)
        totals = dict(recipes=0, copied=0, rewritten=0, reclaimed=0, seconds=0.0)
        while len(system.version_ids()) > 1:
            stats = gc.delete_version(system.version_ids()[0])
            totals["recipes"] += stats.recipes_scanned + stats.recipes_rewritten
            totals["copied"] += stats.bytes_copied
            totals["rewritten"] += stats.containers_rewritten
            totals["reclaimed"] += stats.bytes_reclaimed
            totals["seconds"] += stats.mark_seconds + stats.sweep_seconds
        return totals

    totals = benchmark.pedantic(delete_all, rounds=1, iterations=1)
    emit(f"\n§5.5 — traditional GC expired {VERSIONS - 1} versions: "
         f"{totals['recipes']} recipe scans/rewrites, "
         f"{totals['copied']} bytes copied, "
         f"{totals['rewritten']} containers rewritten, "
         f"{totals['reclaimed']} bytes reclaimed "
         f"in {totals['seconds'] * 1000:.1f} ms "
         f"(HiDeStore: zero scans, zero copies)")
    assert totals["recipes"] > 0


def test_hidestore_single_deletion_latency(benchmark):
    systems = iter([])

    def setup():
        system = run_scheme("hidestore", "kernel", versions=VERSIONS)
        return (system,), {}

    def delete_one(system):
        return system.delete_oldest()

    stats = benchmark.pedantic(delete_one, setup=setup, rounds=5)
    emit("\n§5.5 — single delete_oldest() latency in benchmark table "
         "(paper: 'almost zero').")
