"""Replication sync cost: full seed vs incremental O(delta) syncs.

Backs up several versions of a mutating tree, then measures three syncs
to a local mirror directory:

* **seed** — the first sync ships every container;
* **incremental** — one more backup lands, the next sync ships only the
  newly sealed containers (everything already mirrored is skipped);
* **steady-state** — nothing changed, the sync ships zero objects.

The assertions pin the subsystem's O(delta) contract: work is
proportional to what changed since the last sync, not to repository
size.  A second section measures the same syncs against a mirror daemon
over the loopback wire (framing + digest validation overhead).

Results land in ``BENCH_replication.json`` (see ``common.write_bench_json``).
"""

import os
import random
import time

from common import emit, table, write_bench_json
from repro.observability import MetricsRegistry
from repro.replication import LocalMirror, RemoteMirror, ReplicationSession
from repro.repository import LocalRepository, read_tree
from repro.server import DaemonThread
from repro.units import MiB

FILES = 6
FILE_SIZE = 2 * MiB
#: Bytes appended to one file per incremental version.
DELTA = 256 * 1024
VERSIONS = 3


def _write_tree(base: str) -> None:
    os.makedirs(base, exist_ok=True)
    rng = random.Random(1234)
    for i in range(FILES):
        with open(os.path.join(base, f"f{i}.bin"), "wb") as handle:
            handle.write(rng.randbytes(FILE_SIZE))


def _mutate(base: str, seed: int) -> None:
    rng = random.Random(seed)
    with open(os.path.join(base, "f0.bin"), "ab") as handle:
        handle.write(rng.randbytes(DELTA))


def _timed_sync(repo_root: str, target, metrics: MetricsRegistry):
    session = ReplicationSession(repo_root, target, journal="", metrics=metrics)
    started = time.perf_counter()
    report = session.run()
    return report, time.perf_counter() - started


def _run_phases(repo_root: str, src: str, make_target, metrics: MetricsRegistry):
    """Seed → incremental → steady-state sync timings against one target."""
    repo = LocalRepository(repo_root)
    for v in range(VERSIONS):
        if v:
            _mutate(src, 900 + v)
        repo.backup_tree(read_tree(src), tag=f"v{v + 1}")

    phases = {}
    target = make_target()
    try:
        phases["seed"] = _timed_sync(repo_root, target, metrics)
        _mutate(src, 990)
        repo.backup_tree(read_tree(src), tag="delta")
        phases["incremental"] = _timed_sync(repo_root, target, metrics)
        phases["steady"] = _timed_sync(repo_root, target, metrics)
    finally:
        target.close()

    seed = phases["seed"][0]
    incr = phases["incremental"][0]
    steady = phases["steady"][0]
    assert seed.containers_shipped > 0, "seed sync shipped no containers"
    assert incr.containers_shipped < seed.containers_shipped, (
        "incremental sync re-shipped the whole repository: "
        f"{incr.containers_shipped} vs seed {seed.containers_shipped}"
    )
    assert incr.containers_skipped >= seed.containers_shipped, (
        "incremental sync failed to skip already-mirrored containers"
    )
    assert steady.containers_shipped == 0 and steady.objects_shipped == 0, (
        f"steady-state sync shipped {steady.objects_shipped} objects"
    )
    return phases


def _report(title: str, phases) -> dict:
    rows = []
    doc = {}
    for phase in ("seed", "incremental", "steady"):
        rep, seconds = phases[phase]
        rate = rep.bytes_shipped / seconds / MiB if seconds > 0 else 0.0
        rows.append(
            [
                phase,
                rep.containers_shipped,
                rep.containers_skipped,
                f"{rep.bytes_shipped / MiB:.2f} MB",
                f"{seconds * 1000:.1f} ms",
                f"{rate:.0f} MB/s",
            ]
        )
        doc[phase] = {
            "containers_shipped": rep.containers_shipped,
            "containers_skipped": rep.containers_skipped,
            "objects_shipped": rep.objects_shipped,
            "bytes_shipped": rep.bytes_shipped,
            "objects_deleted": rep.objects_deleted,
            "seconds": seconds,
        }
    table(
        ["sync", "shipped", "skipped", "bytes", "time", "rate"],
        rows,
        title=title,
    )
    return doc


def test_replication_sync_local(tmp_path, benchmark):
    src = str(tmp_path / "src")
    _write_tree(src)
    metrics = MetricsRegistry()
    phases = {}

    def run():
        phases.update(
            _run_phases(
                str(tmp_path / "repo"),
                src,
                lambda: LocalMirror(str(tmp_path / "mirror")),
                metrics,
            )
        )
        return len(phases)

    benchmark.pedantic(run, rounds=1, iterations=1)
    doc = _report("Replication sync, local mirror directory", phases)
    doc["metrics"] = metrics.snapshot().get("counters", {})
    # Dimensionless O(delta) ratio for the regression gate: how many times
    # smaller the incremental ship-set is than the seed's.  A drop means
    # incremental syncs started re-shipping unchanged objects.
    doc["seed_over_incremental_shipped"] = (
        phases["seed"][0].objects_shipped
        / max(1, phases["incremental"][0].objects_shipped)
    )
    write_bench_json("replication", doc)


def test_replication_sync_daemon(tmp_path, benchmark):
    src = str(tmp_path / "src")
    _write_tree(src)
    metrics = MetricsRegistry()
    phases = {}

    thread = DaemonThread(str(tmp_path / "srv"))
    address = thread.start()
    try:

        def run():
            phases.update(
                _run_phases(
                    str(tmp_path / "repo"),
                    src,
                    lambda: RemoteMirror(address, "mirror"),
                    metrics,
                )
            )
            return len(phases)

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        thread.stop()
    doc = _report("Replication sync, mirror daemon over loopback", phases)
    write_bench_json("replication_daemon", doc)
    emit()
