"""Figure 10 — index table overheads (resident index bytes per MB).

Per dataset, prints the resident in-memory index footprint per MB of
deduplicated data for DDFS, Sparse Indexing, SiLo and HiDeStore.

Paper shape: DDFS highest (full-index machinery: Bloom filter + locality
cache), Sparse lower (sampled hooks), SiLo lower still (one entry per
segment), HiDeStore ~zero (the previous recipe *is* the index; T1/T2 are
transient scratch bounded by one-two versions).
"""

import pytest

from common import all_presets, emit, run_scheme, table

SCHEMES = ["ddfs", "sparse", "silo", "hidestore"]


@pytest.mark.parametrize("preset", all_presets())
def test_fig10_index_bytes_per_mb(benchmark, preset):
    systems = {}

    def run_all():
        for scheme in SCHEMES:
            systems[scheme] = run_scheme(scheme, preset)
        return len(systems)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for scheme in SCHEMES:
        report = systems[scheme].report
        rows.append([scheme, f"{report.index_bytes_per_mb:.2f}", report.index_memory_bytes])
    hds = systems["hidestore"]
    rows.append(
        ["hidestore (T1/T2 scratch)", "-", hds.transient_cache_bytes]
    )
    table(
        ["scheme", "index B/MB", "resident bytes"],
        rows,
        title=f"Figure 10 — index table overhead ({preset})",
    )

    assert systems["hidestore"].report.index_bytes_per_mb == 0.0
    assert (
        systems["ddfs"].report.index_bytes_per_mb
        > systems["sparse"].report.index_bytes_per_mb
        > systems["silo"].report.index_bytes_per_mb
        >= systems["hidestore"].report.index_bytes_per_mb
    )


def test_fig10_hidestore_scratch_bounded_by_versions(benchmark):
    """§4.1: T1/T2 are bounded by one (or two) versions' metadata."""
    system = benchmark.pedantic(
        lambda: run_scheme("hidestore", "kernel"), rounds=1, iterations=1
    )
    per_version_entries = len(system.recipes.peek(system.version_ids()[-1]).entries)
    bound = 2 * per_version_entries * 28 * 1.2
    emit(f"\nT1/T2 scratch: {system.transient_cache_bytes} B "
         f"(bound for 2 versions: {bound:.0f} B)")
    assert system.transient_cache_bytes <= bound
