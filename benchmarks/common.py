"""Shared configuration and helpers for the benchmark harness.

Scaling notes (see DESIGN.md §3): the paper's datasets are 64 GB-1.2 TB with
4 MiB containers; here versions are ~16-40 MB, so containers scale to
512 KiB to keep the containers-per-version ratio realistic, and the DDFS
locality cache is sized below the dataset's container count (RAM caches a
sliver of a multi-TB store).  Speed factors therefore top out at 0.5 MB per
container read instead of the paper's 4.0 — compare *ratios between
schemes*, not absolute values.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Iterable, List

from repro.pipeline import build_scheme
from repro.units import KiB, MiB
from repro.workloads import load_preset, preset_names

#: Container size used by every scheme in every benchmark (fairness, §5.3).
CONTAINER = 512 * KiB

#: DDFS locality-cache capacity (containers) — well below dataset size.
DDFS_CACHE = 16

#: Benchmark workload scale (per preset defaults come from the preset).
CHUNKS_PER_VERSION = 2048


#: Lines emitted by benchmarks; the conftest dumps them in the terminal
#: summary so they survive pytest's output capture.
EMITTED: List[str] = []


def emit(text: str = "") -> None:
    """Record a result line for the end-of-run report (and try stdout)."""
    EMITTED.append(text)
    print(text, flush=True)


def write_bench_json(name: str, doc: Dict) -> str:
    """Persist one benchmark's results as machine-readable JSON.

    Writes ``BENCH_<name>.json`` into ``$BENCH_RESULTS_DIR`` (default:
    current directory) so CI can upload the numbers as artifacts and
    trend them across runs instead of scraping terminal tables.
    Returns the path written.
    """
    out_dir = os.environ.get("BENCH_RESULTS_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"[bench-json] {os.path.abspath(path)}")
    return path


def scheme_config(name: str) -> Dict:
    """The benchmark configuration of one named scheme (§5.1 equivalents)."""
    ddfs_kw = dict(index_kwargs=dict(cache_containers=DDFS_CACHE))
    fbw_rewriter = dict(
        container_bytes=CONTAINER,
        window_bytes=8 * MiB,
        target_rewrite_ratio=0.05,
        density_threshold=0.25,
    )
    configs: Dict[str, Dict] = {
        "ddfs": dict(**ddfs_kw),
        "baseline": dict(**ddfs_kw),
        "sparse": {},
        "silo": {},
        "capping": dict(rewriter_kwargs=dict(cap=16, segment_bytes=4 * MiB), **ddfs_kw),
        "cbr": dict(rewriter_kwargs=dict(container_bytes=CONTAINER), **ddfs_kw),
        "cfl": dict(rewriter_kwargs=dict(container_bytes=CONTAINER), **ddfs_kw),
        "fbw": dict(rewriter_kwargs=dict(fbw_rewriter), **ddfs_kw),
        "alacc": dict(
            rewriter_kwargs=dict(fbw_rewriter),
            restorer_kwargs=dict(
                total_bytes=32 * MiB,
                lookahead_bytes=16 * MiB,
                min_faa_bytes=4 * MiB,
                step_bytes=2 * MiB,
            ),
            **ddfs_kw,
        ),
        "hidestore": {},
    }
    return configs[name]


def run_scheme(name: str, preset: str, versions: int = None, chunks: int = None):
    """Back up a preset workload under a named scheme; returns the system."""
    kwargs = dict(scheme_config(name))
    if name == "hidestore":
        from repro.workloads import history_depth_for

        kwargs.setdefault("history_depth", history_depth_for(preset))
    system = build_scheme(name, container_size=CONTAINER, **kwargs)
    workload = load_preset(
        preset,
        versions=versions,
        chunks_per_version=chunks if chunks is not None else CHUNKS_PER_VERSION,
    )
    for stream in workload.versions():
        system.backup(stream)
    return system


def table(headers: List[str], rows: Iterable[List[str]], title: str = "") -> None:
    """Emit an aligned text table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    if title:
        emit()
        emit(title)
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    emit(line)
    emit("-" * len(line))
    for row in rows:
        emit("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def all_presets() -> List[str]:
    return preset_names()
