"""Figure 8 — deduplication ratios among deduplication/rewriting schemes.

Per dataset, runs DDFS (exact), Sparse Indexing, SiLo, Capping, ALACC
(FBW rewriting) and HiDeStore, and prints the deduplication ratio of each.

Paper shape: HiDeStore ≈ DDFS (exact) ≥ SiLo ≥ Sparse > rewriting schemes,
with the rewriting loss growing as more versions are processed.
"""

import pytest

from common import all_presets, emit, run_scheme, table

SCHEMES = ["ddfs", "sparse", "silo", "capping", "alacc", "hidestore"]


@pytest.mark.parametrize("preset", all_presets())
def test_fig8_dedup_ratio(benchmark, preset):
    systems = {}

    def run_all():
        for scheme in SCHEMES:
            systems[scheme] = run_scheme(scheme, preset)
        return len(systems)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table(
        ["scheme", "dedup ratio", "stored bytes"],
        [
            [s, f"{systems[s].dedup_ratio:.4f}", systems[s].report.stored_bytes]
            for s in SCHEMES
        ],
        title=f"Figure 8 — deduplication ratio ({preset})",
    )

    hds = systems["hidestore"].dedup_ratio
    ddfs = systems["ddfs"].dedup_ratio
    # HiDeStore matches exact deduplication (the headline).
    assert abs(hds - ddfs) < 1e-9
    # Near-exact schemes lose at most a few points.
    assert systems["sparse"].dedup_ratio >= ddfs - 0.05
    assert systems["silo"].dedup_ratio >= ddfs - 0.05
    # Rewriting schemes store duplicates and fall below HiDeStore.
    assert systems["capping"].dedup_ratio < hds
    assert systems["alacc"].dedup_ratio < hds


def test_fig8_rewriting_loss_grows_with_versions(benchmark):
    """The paper: 'when processing more data, the rewriting schemes rewrite
    more duplicate chunks ... which further decreases the deduplication
    ratios' — measured as the gap to exact dedup at 8 vs 24 versions."""

    def measure(versions):
        capped = run_scheme("capping", "kernel", versions=versions)
        exact = run_scheme("ddfs", "kernel", versions=versions)
        return exact.dedup_ratio - capped.dedup_ratio

    gaps = benchmark.pedantic(
        lambda: (measure(8), measure(24)), rounds=1, iterations=1
    )
    emit(f"\nFigure 8 (trend) — capping's dedup-ratio loss: "
         f"{gaps[0]:.4f} @8 versions -> {gaps[1]:.4f} @24 versions")
    assert gaps[1] > gaps[0]
