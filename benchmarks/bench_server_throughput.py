"""Networked ingest throughput: N concurrent clients vs one (daemon path).

Runs a real :class:`~repro.server.BackupDaemon` on a loopback socket and
streams identical synthetic workloads through
:class:`~repro.client.RemoteRepository`:

* ``1 client`` — one tenant, versions backed up sequentially;
* ``N clients`` — N tenants driven from N threads concurrently (the
  multi-tenant scaling case: per-repo writer locks never contend).

Reported per scenario: aggregate ingest throughput (logical MB/s across
all clients) and the p50/p95 per-backup request latency.  Concurrent
tenants should scale aggregate throughput past a single client's — the
daemon's event loop only shuttles frames; engine work runs on worker
threads per backup.
"""

import os
import random
import threading
import time

from common import emit, table, write_bench_json
from repro.client import RemoteRepository
from repro.observability import JsonEventLogger, MetricsRegistry
from repro.server import DaemonThread
from repro.units import MiB

#: Concurrent-client count for the scaling scenario.
CLIENTS = 4

#: Shared multiprocess ingest plane size (``serve --ingest-workers``).
INGEST_WORKERS = 4

#: Versions per client and logical bytes per version.
VERSIONS = 3
VERSION_BYTES = 4 * MiB

#: Fraction of each version's bytes rewritten from the previous one.
CHURN = 0.25


def _versions_for(seed):
    """VERSIONS byte-streams with CHURN-level drift between them."""
    rng = random.Random(seed)
    base = bytearray(rng.randbytes(VERSION_BYTES))
    streams = []
    for _ in range(VERSIONS):
        streams.append(bytes(base))
        edit = rng.randrange(0, VERSION_BYTES // 2)
        span = int(VERSION_BYTES * CHURN)
        base[edit : edit + span] = rng.randbytes(span)
    return streams


def _drive_client(address, tenant, streams, latencies):
    with RemoteRepository(address, tenant) as repo:
        for i, payload in enumerate(streams):
            plan = [(f"stream-{i}.bin", len(payload))]
            started = time.perf_counter()
            repo.backup_blocks(iter([payload]), plan, tag=f"v{i + 1}")
            latencies.append(time.perf_counter() - started)


def _run_scenario(address, tenants, datasets):
    """Back up each dataset to its tenant from its own thread; returns
    (elapsed wall-clock seconds, per-client latency lists)."""
    per_client = [[] for _ in tenants]
    threads = [
        threading.Thread(target=_drive_client, args=(address, t, d, lat))
        for t, d, lat in zip(tenants, datasets, per_client)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - started, [sorted(lat) for lat in per_client]


def _pct(sorted_values, q):
    return sorted_values[min(len(sorted_values) - 1, int(q * len(sorted_values)))]


def test_server_ingest_scaling(benchmark, tmp_path):
    datasets = [_versions_for(seed) for seed in range(CLIENTS)]
    per_client_bytes = sum(len(s) for s in datasets[0])
    cpus = os.cpu_count() or 1
    results = {}
    registries = {"one": MetricsRegistry(), "many": MetricsRegistry()}

    def run_all():
        # Both scenarios run against the shared multiprocess ingest plane:
        # one daemon-lifetime chunking pool shared by every tenant.
        with DaemonThread(
            str(tmp_path / "one"),
            ingest_workers=INGEST_WORKERS,
            metrics=registries["one"],
        ) as address:
            results["one"] = _run_scenario(address, ["solo"], datasets[:1])
        with DaemonThread(
            str(tmp_path / "many"),
            ingest_workers=INGEST_WORKERS,
            metrics=registries["many"],
        ) as address:
            results["many"] = _run_scenario(
                address, [f"tenant{i}" for i in range(CLIENTS)], datasets
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    mbps = {}
    chunk_seconds = {}
    doc = {
        "clients": CLIENTS,
        "versions": VERSIONS,
        "version_bytes": VERSION_BYTES,
        "cpus": cpus,
        "ingest_workers": INGEST_WORKERS,
    }
    for key, label, nbytes in (
        ("one", "1 client", per_client_bytes),
        ("many", f"{CLIENTS} clients", per_client_bytes * CLIENTS),
    ):
        elapsed, per_client = results[key]
        pooled = sorted(lat for client in per_client for lat in client)
        mbps[key] = nbytes / elapsed / MiB
        # Daemon-side chunking-stage wall time: how long the dedup engine
        # spent blocked on the upstream chunk+hash stage across all backups.
        chunk_seconds[key] = registries[key].histogram("repo.chunking_seconds").sum
        doc[key] = {
            "seconds": elapsed,
            "aggregate_mbps": mbps[key],
            "p50_seconds": _pct(pooled, 0.50),
            "p95_seconds": _pct(pooled, 0.95),
            "per_client_p95_seconds": [_pct(c, 0.95) for c in per_client],
            "chunking_stage_seconds": chunk_seconds[key],
        }
        rows.append(
            [
                label,
                f"{nbytes / MiB:.0f} MB",
                f"{mbps[key]:.1f} MB/s",
                f"{_pct(pooled, 0.50) * 1000:.0f} ms",
                f"{_pct(pooled, 0.95) * 1000:.0f} ms",
                f"{chunk_seconds[key]:.2f} s",
            ]
        )
    table(
        ["scenario", "logical", "aggregate", "p50 backup", "p95 backup", "chunk stage"],
        rows,
        title=(
            f"Networked ingest — {VERSIONS} versions x {VERSION_BYTES / MiB:.0f} MB "
            f"per client, {CHURN:.0%} churn, {INGEST_WORKERS} ingest workers, "
            f"{cpus} CPUs"
        ),
    )
    doc["speedup_concurrent"] = mbps["many"] / mbps["one"]
    emit(
        f"concurrent/solo aggregate throughput: {doc['speedup_concurrent']:.2f}x "
        f"({cpus} CPUs)"
    )
    write_bench_json("server_throughput", doc)

    # Concurrency must multiply throughput — but only where the hardware
    # can express it.  With >= 4 cores the shared pool must deliver >= 2x
    # aggregate scaling; on smaller runners ingest is CPU-bound end to end
    # (one core runs client, daemon and workers), so the assertion degrades
    # to a collapse guard: concurrency must not cost half the throughput.
    if cpus >= 4:
        assert doc["speedup_concurrent"] >= 2.0
    else:
        assert doc["speedup_concurrent"] >= 0.5


# ----------------------------------------------------------------------
# Observability overhead: metrics + JSON event log vs both disabled
# ----------------------------------------------------------------------
#: Best-of-N runs per configuration (min filters scheduler noise).
OVERHEAD_ROUNDS = 3

#: Ceiling on the acceptable slowdown from metrics + event logging.
OVERHEAD_BUDGET = 0.05


def _timed_solo_ingest(root, streams, server_kwargs, client_kwargs):
    """Wall-clock seconds to push ``streams`` through one tenant."""
    with DaemonThread(root, **server_kwargs) as address:
        started = time.perf_counter()
        with RemoteRepository(address, "solo", **client_kwargs) as repo:
            for i, payload in enumerate(streams):
                plan = [(f"stream-{i}.bin", len(payload))]
                repo.backup_blocks(iter([payload]), plan, tag=f"v{i + 1}")
        return time.perf_counter() - started


def test_observability_overhead(benchmark, tmp_path):
    """Per-operation metrics + structured event logging must cost ~nothing
    next to chunking/hashing/container I/O: the instrumented run may be at
    most OVERHEAD_BUDGET slower than best-of-N with everything off."""
    streams = _versions_for(seed=99)
    elapsed = {"on": [], "off": []}

    def run_all():
        # Interleave configurations so drift (thermal, page cache) hits
        # both equally; keep the best run of each.
        for round_no in range(OVERHEAD_ROUNDS):
            with JsonEventLogger(
                str(tmp_path / f"events-{round_no}.jsonl"), source="daemon"
            ) as log:
                elapsed["on"].append(
                    _timed_solo_ingest(
                        str(tmp_path / f"on-{round_no}"),
                        streams,
                        {"metrics": MetricsRegistry(), "event_log": log},
                        {"metrics": MetricsRegistry()},
                    )
                )
            elapsed["off"].append(
                _timed_solo_ingest(
                    str(tmp_path / f"off-{round_no}"),
                    streams,
                    {"metrics": MetricsRegistry(enabled=False)},
                    {"metrics": MetricsRegistry(enabled=False)},
                )
            )
        return len(elapsed["on"])

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    best_on, best_off = min(elapsed["on"]), min(elapsed["off"])
    overhead = best_on / best_off - 1.0
    nbytes = sum(len(s) for s in streams)
    table(
        ["configuration", "best ingest", "throughput"],
        [
            ["metrics + event log", f"{best_on * 1000:.0f} ms",
             f"{nbytes / best_on / MiB:.1f} MB/s"],
            ["observability off", f"{best_off * 1000:.0f} ms",
             f"{nbytes / best_off / MiB:.1f} MB/s"],
        ],
        title=f"Observability overhead — {VERSIONS} versions x "
        f"{VERSION_BYTES / MiB:.0f} MB, best of {OVERHEAD_ROUNDS}",
    )
    emit(f"observability overhead: {overhead:+.1%} (budget {OVERHEAD_BUDGET:.0%})")
    write_bench_json(
        "observability_overhead",
        {
            "rounds": OVERHEAD_ROUNDS,
            "best_on_seconds": best_on,
            "best_off_seconds": best_off,
            "overhead": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    assert overhead <= OVERHEAD_BUDGET
