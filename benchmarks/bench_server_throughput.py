"""Networked ingest throughput: N concurrent clients vs one (daemon path).

Runs a real :class:`~repro.server.BackupDaemon` on a loopback socket and
streams identical synthetic workloads through
:class:`~repro.client.RemoteRepository`:

* ``1 client`` — one tenant, versions backed up sequentially;
* ``N clients`` — N tenants driven from N threads concurrently (the
  multi-tenant scaling case: per-repo writer locks never contend).

Reported per scenario: aggregate ingest throughput (logical MB/s across
all clients) and the p50/p95 per-backup request latency.  Concurrent
tenants should scale aggregate throughput past a single client's — the
daemon's event loop only shuttles frames; engine work runs on worker
threads per backup.
"""

import random
import threading
import time

from common import emit, table, write_bench_json
from repro.client import RemoteRepository
from repro.observability import JsonEventLogger, MetricsRegistry
from repro.server import DaemonThread
from repro.units import MiB

#: Concurrent-client count for the scaling scenario.
CLIENTS = 4

#: Versions per client and logical bytes per version.
VERSIONS = 3
VERSION_BYTES = 4 * MiB

#: Fraction of each version's bytes rewritten from the previous one.
CHURN = 0.25


def _versions_for(seed):
    """VERSIONS byte-streams with CHURN-level drift between them."""
    rng = random.Random(seed)
    base = bytearray(rng.randbytes(VERSION_BYTES))
    streams = []
    for _ in range(VERSIONS):
        streams.append(bytes(base))
        edit = rng.randrange(0, VERSION_BYTES // 2)
        span = int(VERSION_BYTES * CHURN)
        base[edit : edit + span] = rng.randbytes(span)
    return streams


def _drive_client(address, tenant, streams, latencies):
    with RemoteRepository(address, tenant) as repo:
        for i, payload in enumerate(streams):
            plan = [(f"stream-{i}.bin", len(payload))]
            started = time.perf_counter()
            repo.backup_blocks(iter([payload]), plan, tag=f"v{i + 1}")
            latencies.append(time.perf_counter() - started)


def _run_scenario(address, tenants, datasets):
    """Back up each dataset to its tenant from its own thread; returns
    (elapsed wall-clock seconds, sorted per-backup latencies)."""
    latencies = []
    threads = [
        threading.Thread(target=_drive_client, args=(address, t, d, latencies))
        for t, d in zip(tenants, datasets)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - started, sorted(latencies)


def _pct(sorted_values, q):
    return sorted_values[min(len(sorted_values) - 1, int(q * len(sorted_values)))]


def test_server_ingest_scaling(benchmark, tmp_path):
    datasets = [_versions_for(seed) for seed in range(CLIENTS)]
    per_client = sum(len(s) for s in datasets[0])
    results = {}

    def run_all():
        with DaemonThread(str(tmp_path / "one")) as address:
            results["one"] = _run_scenario(address, ["solo"], datasets[:1])
        with DaemonThread(str(tmp_path / "many")) as address:
            results["many"] = _run_scenario(
                address, [f"tenant{i}" for i in range(CLIENTS)], datasets
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    mbps = {}
    for key, label, nbytes in (
        ("one", "1 client", per_client),
        ("many", f"{CLIENTS} clients", per_client * CLIENTS),
    ):
        elapsed, latencies = results[key]
        mbps[key] = nbytes / elapsed / MiB
        rows.append(
            [
                label,
                f"{nbytes / MiB:.0f} MB",
                f"{mbps[key]:.1f} MB/s",
                f"{_pct(latencies, 0.50) * 1000:.0f} ms",
                f"{_pct(latencies, 0.95) * 1000:.0f} ms",
            ]
        )
    table(
        ["scenario", "logical", "aggregate", "p50 backup", "p95 backup"],
        rows,
        title=(
            f"Networked ingest — {VERSIONS} versions x {VERSION_BYTES / MiB:.0f} MB "
            f"per client, {CHURN:.0%} churn"
        ),
    )
    emit(
        f"concurrent/solo aggregate throughput: {mbps['many'] / mbps['one']:.2f}x"
    )
    write_bench_json(
        "server_throughput",
        {
            "clients": CLIENTS,
            "versions": VERSIONS,
            "version_bytes": VERSION_BYTES,
            "one": {"seconds": results["one"][0], "aggregate_mbps": mbps["one"]},
            "many": {"seconds": results["many"][0], "aggregate_mbps": mbps["many"]},
            "speedup_concurrent": mbps["many"] / mbps["one"],
        },
    )

    # Concurrency must help, not serialise: N tenants together must beat a
    # single client's throughput (conservative floor — CI boxes vary).
    assert mbps["many"] > mbps["one"]


# ----------------------------------------------------------------------
# Observability overhead: metrics + JSON event log vs both disabled
# ----------------------------------------------------------------------
#: Best-of-N runs per configuration (min filters scheduler noise).
OVERHEAD_ROUNDS = 3

#: Ceiling on the acceptable slowdown from metrics + event logging.
OVERHEAD_BUDGET = 0.05


def _timed_solo_ingest(root, streams, server_kwargs, client_kwargs):
    """Wall-clock seconds to push ``streams`` through one tenant."""
    with DaemonThread(root, **server_kwargs) as address:
        started = time.perf_counter()
        with RemoteRepository(address, "solo", **client_kwargs) as repo:
            for i, payload in enumerate(streams):
                plan = [(f"stream-{i}.bin", len(payload))]
                repo.backup_blocks(iter([payload]), plan, tag=f"v{i + 1}")
        return time.perf_counter() - started


def test_observability_overhead(benchmark, tmp_path):
    """Per-operation metrics + structured event logging must cost ~nothing
    next to chunking/hashing/container I/O: the instrumented run may be at
    most OVERHEAD_BUDGET slower than best-of-N with everything off."""
    streams = _versions_for(seed=99)
    elapsed = {"on": [], "off": []}

    def run_all():
        # Interleave configurations so drift (thermal, page cache) hits
        # both equally; keep the best run of each.
        for round_no in range(OVERHEAD_ROUNDS):
            with JsonEventLogger(
                str(tmp_path / f"events-{round_no}.jsonl"), source="daemon"
            ) as log:
                elapsed["on"].append(
                    _timed_solo_ingest(
                        str(tmp_path / f"on-{round_no}"),
                        streams,
                        {"metrics": MetricsRegistry(), "event_log": log},
                        {"metrics": MetricsRegistry()},
                    )
                )
            elapsed["off"].append(
                _timed_solo_ingest(
                    str(tmp_path / f"off-{round_no}"),
                    streams,
                    {"metrics": MetricsRegistry(enabled=False)},
                    {"metrics": MetricsRegistry(enabled=False)},
                )
            )
        return len(elapsed["on"])

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    best_on, best_off = min(elapsed["on"]), min(elapsed["off"])
    overhead = best_on / best_off - 1.0
    nbytes = sum(len(s) for s in streams)
    table(
        ["configuration", "best ingest", "throughput"],
        [
            ["metrics + event log", f"{best_on * 1000:.0f} ms",
             f"{nbytes / best_on / MiB:.1f} MB/s"],
            ["observability off", f"{best_off * 1000:.0f} ms",
             f"{nbytes / best_off / MiB:.1f} MB/s"],
        ],
        title=f"Observability overhead — {VERSIONS} versions x "
        f"{VERSION_BYTES / MiB:.0f} MB, best of {OVERHEAD_ROUNDS}",
    )
    emit(f"observability overhead: {overhead:+.1%} (budget {OVERHEAD_BUDGET:.0%})")
    write_bench_json(
        "observability_overhead",
        {
            "rounds": OVERHEAD_ROUNDS,
            "best_on_seconds": best_on,
            "best_off_seconds": best_off,
            "overhead": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    assert overhead <= OVERHEAD_BUDGET
