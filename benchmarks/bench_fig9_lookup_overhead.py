"""Figure 9 — lookup overhead (lookup requests per GB) vs version count.

Prints, for kernel (9a) and gcc (9b), the cumulative lookup-requests-per-GB
of DDFS, Sparse Indexing, SiLo and HiDeStore as versions accumulate.

Paper shape: HiDeStore is the lowest and stays flat (bounded by one
version's recipe prefetch); DDFS is the highest and grows; the headline is
a reduction of up to ~71% vs DDFS.
"""

import pytest

from common import CHUNKS_PER_VERSION, emit, run_scheme, table

SCHEMES = ["ddfs", "sparse", "silo", "hidestore"]
CHECKPOINTS = (8, 16, 24)


@pytest.mark.parametrize("preset", ["kernel", "gcc"])
def test_fig9_lookups_per_gb(benchmark, preset):
    systems = {}

    def run_all():
        for scheme in SCHEMES:
            systems[scheme] = run_scheme(scheme, preset, versions=max(CHECKPOINTS))
        return len(systems)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Cumulative lookups/GB at each checkpoint, from the per-version reports.
    rows = []
    series = {}
    for scheme in SCHEMES:
        reports = systems[scheme].report.per_version
        points = []
        for checkpoint in CHECKPOINTS:
            lookups = sum(r.disk_index_lookups for r in reports[:checkpoint])
            logical = sum(r.logical_bytes for r in reports[:checkpoint])
            points.append(lookups / (logical / 2**30))
        series[scheme] = points
        rows.append([scheme] + [f"{p:.0f}" for p in points])

    table(
        ["scheme"] + [f"@{c} versions" for c in CHECKPOINTS],
        rows,
        title=f"Figure 9 — lookup requests per GB ({preset})",
    )
    reduction = 1 - series["hidestore"][-1] / series["ddfs"][-1]
    emit(f"HiDeStore reduces lookups by {reduction:.0%} vs DDFS "
         f"(paper: up to 71%)")

    assert series["hidestore"][-1] < series["ddfs"][-1]
    assert series["hidestore"][-1] < series["sparse"][-1] * 2  # same order
    # HiDeStore stays flat: bounded by one version's recipe.
    assert series["hidestore"][-1] <= series["hidestore"][0] * 1.3
    # DDFS's per-version lookups grow as fragmentation spreads the data.
    ddfs_reports = systems["ddfs"].report.per_version
    early = sum(r.disk_index_lookups for r in ddfs_reports[1:7]) / 6
    late = sum(r.disk_index_lookups for r in ddfs_reports[-6:]) / 6
    assert late >= early
