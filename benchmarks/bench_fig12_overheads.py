"""Figure 12 — HiDeStore overheads: recipe updates and chunk moving.

Measures the two overhead sources §5.4 reports:

* mean latency of updating one (previous) recipe after a version;
* latency of moving cold chunks to archival containers + merging sparse
  active containers.

These are real wall-clock timings via pytest-benchmark (the paper reports
e.g. 21 ms per kernel recipe at 414 MB versions; ours are smaller versions,
so proportionally faster — the claim being reproduced is that the overhead
is milliseconds-scale and bounded per version, not that it matches a number
measured on different hardware).
"""

import pytest

from common import CHUNKS_PER_VERSION, CONTAINER, all_presets, emit, run_scheme
from repro.chunking.stream import synthetic_fingerprint
from repro.core.double_cache import CacheEntry
from repro.core.hidestore import HiDeStore
from repro.storage.recipe import ACTIVE_CID, Recipe
from repro.workloads import load_preset


@pytest.mark.parametrize("preset", all_presets())
def test_fig12_update_one_recipe(benchmark, preset):
    """Latency of the per-version previous-recipe update (§4.3)."""
    chunks = CHUNKS_PER_VERSION
    recipe = Recipe(1, "bench")
    for t in range(chunks):
        recipe.append(synthetic_fingerprint(t), 8192, ACTIVE_CID)
    moved = {synthetic_fingerprint(t): 5 for t in range(0, chunks, 20)}

    from repro.core.recipe_chain import RecipeChain
    from repro.storage.recipe import MemoryRecipeStore

    def update():
        store = MemoryRecipeStore()
        chain = RecipeChain(store)
        fresh = Recipe(1, "bench")
        for entry in recipe.entries:
            fresh.append(entry.fingerprint, entry.size, ACTIVE_CID)
        store.write(fresh)
        chain.update_previous(1, moved, next_version=2)
        return chain.stats.update_seconds

    seconds = benchmark(update)
    emit(f"\nFigure 12 ({preset}) — update one recipe of {chunks} chunks: "
         f"see benchmark table (paper: ~21 ms for kernel at 50k chunks)")


@pytest.mark.parametrize("preset", all_presets())
def test_fig12_move_chunks(benchmark, preset):
    """Latency of demotion + compaction for one version's cold set."""
    workload = load_preset(preset, versions=6, chunks_per_version=CHUNKS_PER_VERSION)
    streams = workload.all_versions()

    def backup_five_then_move():
        system = HiDeStore(container_size=CONTAINER)
        for stream in streams[:5]:
            system.backup(stream)
        before_moves = system.pool.stats.move_seconds
        before_compact = system.pool.stats.compact_seconds
        system.backup(streams[5])  # includes one demotion + compaction
        return (
            system.pool.stats.move_seconds - before_moves,
            system.pool.stats.compact_seconds - before_compact,
        )

    move_s, compact_s = benchmark.pedantic(backup_five_then_move, rounds=3, iterations=1)
    emit(f"\nFigure 12 ({preset}) — move cold chunks: {move_s * 1000:.2f} ms, "
         f"merge sparse containers: {compact_s * 1000:.2f} ms")
    assert move_s < 0.5
    assert compact_s < 0.5


def test_fig12_deferred_maintenance_off_critical_path(benchmark):
    """§5.4: the chunk-moving can be processed offline (pipelined).

    Measures the backup critical path with maintenance inline vs deferred;
    deferred backups must be faster, and draining the queue afterwards must
    perform exactly the same filter work.
    """
    workload = load_preset("kernel", versions=10, chunks_per_version=CHUNKS_PER_VERSION)
    streams = workload.all_versions()

    def run(deferred):
        system = HiDeStore(container_size=CONTAINER, deferred_maintenance=deferred)
        for stream in streams:
            system.backup(stream)
        critical = sum(r.elapsed_seconds for r in system.report.per_version)
        system.run_maintenance()
        return critical, system

    def both():
        # Best-of-3 per mode: single wall-clock samples of ~40 ms totals are
        # too noisy for a strict comparison.
        inline_samples, deferred_samples = [], []
        inline_sys = deferred_sys = None
        for _ in range(3):
            seconds, inline_sys = run(False)
            inline_samples.append(seconds)
            seconds, deferred_sys = run(True)
            deferred_samples.append(seconds)
        return min(inline_samples), min(deferred_samples), inline_sys, deferred_sys

    inline_s, deferred_s, inline_sys, deferred_sys = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    emit(f"\nFigure 12 (§5.4, pipelined) — backup critical path (best of 3): "
         f"inline {inline_s * 1000:.1f} ms, deferred {deferred_s * 1000:.1f} ms "
         f"({inline_s / max(deferred_s, 1e-9):.2f}x)")
    # Deferred must not be slower beyond measurement noise; the hard
    # guarantee is that the filter work itself left the critical path.
    assert deferred_s < inline_s * 1.10
    assert (
        deferred_sys.pool.stats.cold_chunks_moved
        == inline_sys.pool.stats.cold_chunks_moved
    )


def test_fig12_flatten_whole_chain(benchmark):
    """Algorithm 1 over a full history (run offline before restores)."""
    system = run_scheme("hidestore", "kernel")

    def flatten():
        return system.chain.flatten()

    benchmark(flatten)
    emit("\nFigure 12 — Algorithm 1 (flatten) timing in benchmark table; "
         "idempotent re-runs are cheap.")
