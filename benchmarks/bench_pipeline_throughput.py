"""Ingest throughput: serial chunk_stream vs the parallel pipeline (§5.4).

Backs up the same synthetic file-tree versions three ways and compares
wall-clock ingest throughput:

* ``legacy serial`` — the pre-engine path: scalar FastCDC over the
  concatenated stream, chunking strictly before dedup;
* ``engine w=1`` — :class:`~repro.engine.ingest.PipelinedIngestEngine`
  with one worker (vectorized chunking, inline);
* ``engine w=4`` — four workers plus background maintenance, chunking
  overlapped with classification.

The engines chunk per file (boundaries reset at file edges), so recipes
differ from the concatenated legacy stream — throughput is the comparison
here; exact parallel-vs-serial equivalence is covered by the test suite.
"""

import time

import pytest

from common import CONTAINER, emit, table, write_bench_json
from repro.chunking import FastCDCChunker
from repro.engine import build_engine
from repro.pipeline import build_scheme
from repro.units import KiB, MiB
from repro.workloads.files import FileTreeGenerator, FileTreeSpec

SPEC = FileTreeSpec(
    files=8,
    mean_file_size=int(1 * MiB),
    versions=3,
    edit_rate=0.05,
    append_rate=0.3,
    churn_rate=0.1,
    seed=11,
)

#: Paper-shaped chunking scaled to the workload (~2 KiB average).
CHUNKER = dict(min_size=512, avg_size=2048, max_size=16 * KiB)

#: Acceptance floor: parallel engine vs the legacy serial path.
MIN_SPEEDUP = 1.5


def _tree_versions():
    return list(FileTreeGenerator(SPEC).versions())


def _items(tree):
    return [tree[name] for name in sorted(tree)]


def _run_legacy(trees):
    system = build_scheme("hidestore", container_size=CONTAINER)
    chunker = FastCDCChunker(**CHUNKER)
    started = time.perf_counter()
    for i, tree in enumerate(trees):
        blocks = _items(tree)
        system.backup(chunker.chunk_stream(blocks, tag=f"v{i + 1}"))
    return system, time.perf_counter() - started


def _run_engine(trees, workers):
    engine = build_engine(
        "hidestore",
        workers=workers,
        executor="thread",
        chunker=FastCDCChunker(**CHUNKER),
        background_maintenance=workers > 1,
        container_size=CONTAINER,
    )
    started = time.perf_counter()
    for i, tree in enumerate(trees):
        engine.ingest(_items(tree), tag=f"v{i + 1}")
    engine.join()
    elapsed = time.perf_counter() - started
    engine.close()
    return engine, elapsed


def test_pipeline_ingest_throughput(benchmark):
    trees = _tree_versions()
    logical = sum(len(blob) for tree in trees for blob in tree.values())
    results = {}

    def run_all():
        results["legacy"] = _run_legacy(trees)
        results["w1"] = _run_engine(trees, workers=1)
        results["w4"] = _run_engine(trees, workers=4)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    mbps = {}
    _, base_elapsed = results["legacy"]
    for key, label in (("legacy", "legacy serial"), ("w1", "engine w=1"), ("w4", "engine w=4")):
        system, elapsed = results[key]
        mbps[key] = logical / elapsed / MiB
        rows.append(
            [
                label,
                f"{mbps[key]:.1f} MB/s",
                f"{base_elapsed / elapsed:.2f}x",
                f"{system.dedup_ratio:.4f}",
            ]
        )
    table(
        ["ingest path", "throughput", "speedup", "dedup ratio"],
        rows,
        title=f"Pipelined ingest — {logical / MiB:.0f} MB logical, {len(trees)} versions",
    )

    # The engines see per-file streams; dedup must still land in the same
    # ballpark as the legacy concatenated stream (boundary-edge chunks only).
    legacy_ratio = results["legacy"][0].dedup_ratio
    for key in ("w1", "w4"):
        assert abs(results[key][0].dedup_ratio - legacy_ratio) < 0.05

    speedup = base_elapsed / results["w4"][1]
    write_bench_json(
        "ingest_throughput",
        {
            "logical_bytes": logical,
            "versions": len(trees),
            "throughput_mb_s": {k: mbps[k] for k in mbps},
            "speedup_w4": speedup,
            "min_speedup_floor": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel ingest speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )
