"""Restore throughput: serial vs the prefetching parallel restore (§4.4).

Restores the same fragmented version two ways — ``workers=1`` (the old
serial read loop) and ``workers=4`` (the prefetching container-reader
pool) — over a **modelled HDD**: every archival container read sleeps
``seek + size/transfer`` per the repo's own :class:`~repro.storage.
io_model.DiskModel` (8 ms seek, 150 MiB/s).  The sleeps release the GIL,
so the benchmark measures exactly what the prefetch pipeline is for:
overlapping container-read latency with reassembly and delivery.  On a
real spinning disk the same overlap comes for free; modelling it keeps
the result reproducible on CI runners with fast SSD page caches.

Three sections:

* **local** — ``LocalRepository.restore`` straight into a hash;
* **daemon loopback** — the same repository served by ``DaemonThread``
  and restored through ``RemoteRepository`` (adds framing + socket);
* **object store** — the repository on a latency-modelled fake-S3
  server, where the reader pool issues parallel *ranged* GETs
  (:meth:`BackendContainerStore.read_chunks`) instead of whole-container
  reads.

All assert byte-identical output across worker counts and a p50
speedup floor for ``workers=4`` over serial.
"""

import hashlib
import random
import statistics
import time

import pytest

from common import emit, table, write_bench_json
from repro.client import RemoteRepository
from repro.repository import LocalRepository, materialize, read_tree
from repro.server import DaemonThread
from repro.storage.io_model import DiskModel
from repro.units import MiB

#: v1 payload: FILES × FILE_SIZE, ~50% compressible (zlib-friendly).
FILES = 8
FILE_SIZE = 6 * MiB

#: Rounds per configuration (after one untimed warmup each).
ROUNDS = 5
REMOTE_ROUNDS = 3

#: Acceptance floors on the p50 round time, parallel vs serial.
MIN_SPEEDUP_LOCAL = 1.5
MIN_SPEEDUP_REMOTE = 1.2
MIN_SPEEDUP_S3 = 1.3

#: Modelled object-store round-trip latency per request (seconds).
S3_LATENCY = 0.008

MODEL = DiskModel()


def _blob(seed: int, size: int) -> bytes:
    """~50% compressible payload: each 8 KiB is a doubled 4 KiB random block."""
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < size:
        block = rng.randbytes(4096)
        out += block + block
    return bytes(out[:size])


def _write_tree(base, files):
    import os

    os.makedirs(base, exist_ok=True)
    for rel, payload in files.items():
        with open(os.path.join(base, rel), "wb") as handle:
            handle.write(payload)
    return read_tree(base)


def _add_modeled_latency(store) -> None:
    """Wrap ``store.containers.read`` with the DiskModel's per-read cost."""
    inner = store.containers.read

    def modeled_read(cid):
        container = inner(cid)
        time.sleep(
            MODEL.seek_seconds + container.used / MODEL.transfer_bytes_per_second
        )
        return container

    store.containers.read = modeled_read


def _drain_digest(plan, data) -> "tuple[hashlib._Hash, int]":
    digest = hashlib.sha256()
    nbytes = 0
    for block in data:
        digest.update(block)
        nbytes += len(block)
    return digest.hexdigest(), nbytes


def _build_fragmented_repo(root, src, compress=True):
    """v1 = the full tree; v2 keeps one file, demoting the rest to archival.

    HiDeStore seals chunks into archival containers only when the *next*
    backup drops them — restoring v1 afterwards is the paper's fragmented
    read path: most of the payload comes from archival container files.
    """
    files = {f"f{i}.bin": _blob(400 + i, FILE_SIZE) for i in range(FILES)}
    entries = _write_tree(src, files)
    repo = LocalRepository(root, compress=compress)
    repo.backup_tree(entries, tag="full")
    repo.backup_tree([entries[0]], tag="trimmed")
    return repo, files, entries


def _report(title, logical, timings, digests):
    rows = []
    p50 = {}
    for workers in sorted(timings):
        times = timings[workers]
        p50[workers] = statistics.median(times)
        p95 = sorted(times)[max(0, int(len(times) * 0.95) - 1)]
        rows.append(
            [
                f"workers={workers}",
                f"{logical / p50[workers] / MiB:.0f} MB/s",
                f"{p50[workers]:.3f}s",
                f"{p95:.3f}s",
                f"{p50[min(timings)] / p50[workers]:.2f}x",
            ]
        )
    table(["restore path", "throughput", "p50", "p95", "speedup"], rows, title=title)
    assert len(set(digests.values())) == 1, (
        f"restore payloads diverged across worker counts: {digests}"
    )
    return p50


def test_restore_throughput_local(tmp_path, benchmark):
    repo, files, _ = _build_fragmented_repo(
        str(tmp_path / "repo"), str(tmp_path / "src")
    )
    _add_modeled_latency(repo._open())
    logical = sum(len(b) for b in files.values())
    timings = {1: [], 4: []}
    digests = {}

    def run_all():
        for workers in timings:
            # Warmup round materializes to disk and checks every byte.
            plan, data = repo.restore(1, workers=workers, verify=True)
            out = str(tmp_path / f"out-w{workers}")
            materialize(plan, data, out)
            restored = {rel: open(path, "rb").read() for rel, path in read_tree(out)}
            assert restored == files, f"workers={workers} restore not byte-identical"
            for _ in range(ROUNDS):
                started = time.perf_counter()
                plan, data = repo.restore(1, workers=workers, verify=True)
                digests[workers], nbytes = _drain_digest(plan, data)
                timings[workers].append(time.perf_counter() - started)
                assert nbytes == logical
        return len(timings)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    p50 = _report(
        f"Parallel restore, local — {logical / MiB:.0f} MB over modelled HDD",
        logical,
        timings,
        digests,
    )
    speedup = p50[1] / p50[4]
    write_bench_json(
        "restore_throughput_local",
        {
            "logical_bytes": logical,
            "rounds": ROUNDS,
            "p50_seconds": {f"workers={w}": p50[w] for w in p50},
            "speedup_p50": speedup,
            "min_speedup_floor": MIN_SPEEDUP_LOCAL,
        },
    )
    assert speedup >= MIN_SPEEDUP_LOCAL, (
        f"local parallel restore speedup {speedup:.2f}x "
        f"below the {MIN_SPEEDUP_LOCAL}x floor"
    )


def test_restore_throughput_s3(tmp_path, benchmark):
    """Parallel ranged GETs against a latency-modelled object store.

    The repository lives on a fake-S3 server with a per-request latency
    (uncompressed containers, so :meth:`read_chunks` serves restore slots
    through ranged GETs).  With ``workers=4`` those request round-trips
    overlap; the floor asserts the scaling the backends were built for.
    """
    from repro.storage.fake_s3 import FakeS3Server

    with FakeS3Server("127.0.0.1") as server:
        repo, files, _ = _build_fragmented_repo(
            server.url("bucket", "bench"), str(tmp_path / "src"), compress=False
        )
        logical = sum(len(b) for b in files.values())
        timings = {1: [], 4: []}
        digests = {}

        def run_all():
            server.latency = 0.0  # warmup rounds at full speed
            for workers in timings:
                plan, data = repo.restore(1, workers=workers, verify=True)
                out = str(tmp_path / f"out-w{workers}")
                materialize(plan, data, out)
                restored = {
                    rel: open(path, "rb").read() for rel, path in read_tree(out)
                }
                assert restored == files, (
                    f"workers={workers} restore not byte-identical"
                )
            server.latency = S3_LATENCY
            for workers in timings:
                for _ in range(ROUNDS):
                    started = time.perf_counter()
                    plan, data = repo.restore(1, workers=workers, verify=True)
                    digests[workers], nbytes = _drain_digest(plan, data)
                    timings[workers].append(time.perf_counter() - started)
                    assert nbytes == logical
            server.latency = 0.0
            return len(timings)

        benchmark.pedantic(run_all, rounds=1, iterations=1)
        ranged = server.ranged_get_records()
        peak = server.max_concurrent_ranged_gets()

    assert ranged, "object-store restore issued no ranged GETs"
    p50 = _report(
        f"Parallel restore, object store — {logical / MiB:.0f} MB over "
        f"fake-S3 ({S3_LATENCY * 1000:.0f} ms/request)",
        logical,
        timings,
        digests,
    )
    emit(f"ranged GETs: {len(ranged)}, peak in flight: {peak}")
    speedup = p50[1] / p50[4]
    write_bench_json(
        "restore_throughput_s3",
        {
            "logical_bytes": logical,
            "rounds": ROUNDS,
            "latency_seconds": S3_LATENCY,
            "p50_seconds": {f"workers={w}": p50[w] for w in p50},
            "speedup_p50": speedup,
            "min_speedup_floor": MIN_SPEEDUP_S3,
            "ranged_gets": len(ranged),
            "peak_concurrent_ranged_gets": peak,
        },
    )
    assert speedup >= MIN_SPEEDUP_S3, (
        f"object-store parallel restore speedup {speedup:.2f}x "
        f"below the {MIN_SPEEDUP_S3}x floor"
    )


def test_restore_throughput_daemon_loopback(tmp_path, benchmark):
    src = str(tmp_path / "src")
    files = {f"f{i}.bin": _blob(400 + i, FILE_SIZE) for i in range(FILES)}
    entries = _write_tree(src, files)
    logical = sum(len(b) for b in files.values())
    timings = {1: [], 4: []}
    digests = {}

    thread = DaemonThread(str(tmp_path / "srv"), restore_workers=8)
    address = thread.start()
    try:
        with RemoteRepository(address, "bench") as repo:
            repo.backup_tree(entries, tag="full")
            repo.backup_tree([entries[0]], tag="trimmed")
        # DaemonThread runs in-process: reach the tenant's store directly
        # and put the modelled HDD behind the daemon's container reads.
        handle = thread.daemon.registry.get("bench")
        _add_modeled_latency(handle.repository._open())

        def run_all():
            with RemoteRepository(address, "bench") as repo:
                for workers in timings:
                    plan, data = repo.restore(1, workers=workers, verify=True)
                    _drain_digest(plan, data)  # warmup
                    for _ in range(REMOTE_ROUNDS):
                        started = time.perf_counter()
                        plan, data = repo.restore(1, workers=workers, verify=True)
                        digests[workers], nbytes = _drain_digest(plan, data)
                        timings[workers].append(time.perf_counter() - started)
                        assert nbytes == logical
            return len(timings)

        benchmark.pedantic(run_all, rounds=1, iterations=1)
    finally:
        thread.stop()

    p50 = _report(
        f"Parallel restore, daemon loopback — {logical / MiB:.0f} MB "
        "over modelled HDD",
        logical,
        timings,
        digests,
    )
    speedup = p50[1] / p50[4]
    write_bench_json(
        "restore_throughput_daemon",
        {
            "logical_bytes": logical,
            "rounds": REMOTE_ROUNDS,
            "p50_seconds": {f"workers={w}": p50[w] for w in p50},
            "speedup_p50": speedup,
            "min_speedup_floor": MIN_SPEEDUP_REMOTE,
        },
    )
    assert speedup >= MIN_SPEEDUP_REMOTE, (
        f"loopback parallel restore speedup {speedup:.2f}x "
        f"below the {MIN_SPEEDUP_REMOTE}x floor"
    )
