"""Table 1 — Characteristics of workloads.

Regenerates the paper's dataset-characteristics table from the scaled
synthetic presets: total logical size, version count and (exact)
deduplication ratio, next to the paper's reported values.  The benchmark
timing measures workload generation throughput.
"""

import pytest

from common import CHUNKS_PER_VERSION, all_presets, emit, table
from repro.metrics import exact_dedup_ratio
from repro.units import format_bytes
from repro.workloads import PRESETS, load_preset


@pytest.mark.parametrize("preset", all_presets())
def test_table1_row(benchmark, preset):
    workload = load_preset(preset, chunks_per_version=CHUNKS_PER_VERSION)

    def generate():
        total = 0
        versions = 0
        for stream in workload.versions():
            total += stream.logical_size
            versions += 1
        return total, versions

    total, versions = benchmark.pedantic(generate, rounds=1, iterations=1)
    measured = exact_dedup_ratio(workload.versions())
    paper = PRESETS[preset]
    table(
        ["dataset", "total size", "versions", "dedup ratio", "paper size", "paper vers", "paper ratio"],
        [[
            preset,
            format_bytes(total),
            versions,
            f"{measured:.2%}",
            paper.paper_total_size,
            paper.paper_versions,
            f"{paper.paper_dedup_ratio:.2%}",
        ]],
        title=f"Table 1 (scaled) — {preset}",
    )
    # The preset must land within a few points of the paper's ratio.
    assert abs(measured - paper.paper_dedup_ratio) < 0.05


def test_table1_summary(benchmark):
    rows = []

    def build():
        for preset in all_presets():
            workload = load_preset(preset, chunks_per_version=1024)
            total = sum(s.logical_size for s in workload.versions())
            ratio = exact_dedup_ratio(workload.versions())
            paper = PRESETS[preset]
            rows.append([
                preset,
                format_bytes(total),
                workload.spec.versions,
                f"{ratio:.2%}",
                f"{paper.paper_dedup_ratio:.2%}",
            ])
        return len(rows)

    benchmark.pedantic(build, rounds=1, iterations=1)
    table(
        ["dataset", "total size", "versions", "measured ratio", "paper ratio"],
        rows,
        title="Table 1 — all datasets (scaled reproduction)",
    )
