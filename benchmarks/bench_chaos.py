"""Chaos harness benchmark: throughput under fault injection.

Replays the bundled ``benchmarks/scenarios/`` specs through the chaos
runner and reports sustained multi-tenant ops/s *while faults fire* —
the number that says what fleet-scale churn costs, not just a clean-path
throughput.  The headline correctness number rides along: every run must
finish with **zero invariant violations** and zero untyped errors, and
``check_regression.py`` holds ``BENCH_chaos.json`` to that ceiling.

Two deployment shapes are exercised: ``many_small_tenants`` against the
in-process engine (storage-seam faults only) and ``mixed_churn`` against
a live 3-daemon cluster + mirror daemon, where the fault set includes a
SIGKILL'd primary, a corrupted replication PUT and a partitioned mirror.
"""

from __future__ import annotations

import os

from common import emit, write_bench_json

from repro.chaos import load_scenario
from repro.chaos.runner import ChaosRunner
from repro.observability import MetricsRegistry

SCENARIO_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "scenarios")


def _run(name: str, deploy: str, workdir: str, **deploy_kwargs):
    scenario = load_scenario(os.path.join(SCENARIO_DIR, f"{name}.json"))
    runner = ChaosRunner(
        scenario,
        deploy=deploy,
        workdir=workdir,
        metrics=MetricsRegistry(),
        deploy_kwargs=deploy_kwargs,
    )
    return runner.run()


def test_chaos_throughput(benchmark, tmp_path):
    """ops/s with faults firing, across an engine run and a cluster run."""
    reports = {}

    def run_all():
        reports["many_small_tenants"] = _run(
            "many_small_tenants", "local", str(tmp_path / "small")
        )
        reports["mixed_churn"] = _run(
            "mixed_churn", "cluster", str(tmp_path / "mixed"),
            nodes=3, replicas=2,
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    doc = {"scenarios": {}, "invariant_violations": 0, "ops_failed_untyped": 0,
           "faults_injected": 0}
    for name, report in sorted(reports.items()):
        ops = report["ops"]["attempted"]
        seconds = report["duration_seconds"]
        doc["scenarios"][name] = {
            "deploy": report["deploy"],
            "schedule_digest": report["schedule"]["digest"],
            "ops": ops,
            "ops_per_second": round(ops / seconds, 3) if seconds else 0.0,
            "faults_injected": report["faults_injected"],
            "invariant_failures": report["invariant_failures"],
            "duration_seconds": seconds,
        }
        doc["invariant_violations"] += report["invariant_failures"]
        doc["ops_failed_untyped"] += report["ops"]["by_status"].get(
            "failed_untyped", 0
        )
        doc["faults_injected"] += report["faults_injected"]
        emit(
            f"chaos {name} [{report['deploy']}]: {ops} ops in "
            f"{seconds:.1f}s ({doc['scenarios'][name]['ops_per_second']:.1f} "
            f"ops/s), {report['faults_injected']} faults, "
            f"{report['invariant_failures']} invariant violations"
        )
    write_bench_json("chaos", doc)

    # The chaos contract: faults actually fired, and nothing they did
    # produced a torn version, a torn mirror, or an untyped error.
    assert doc["faults_injected"] >= 3
    assert doc["invariant_violations"] == 0
    assert doc["ops_failed_untyped"] == 0
