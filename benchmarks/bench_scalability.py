"""The scalability claim (paper §1/§3): restore performance *over time*.

    "The scalability in this paper is interpreted that the proposed scheme
     provides high restore performance over time, which is efficient even
     when a large number of backup versions are stored."

This bench grows the retained history (10 → 20 → 30 versions of the kernel
workload) and tracks the speed factor of the **newest** version under the
traditional baseline and HiDeStore:

* baseline: decays monotonically — every added version fragments the next;
* HiDeStore: stays flat (within noise) — the hot set is always one
  version's worth of dense containers, no matter how long the history.

A second part checks the memory side of scalability: HiDeStore's T1/T2
scratch stays bounded by ~one version's metadata as history grows, while
DDFS's resident index keeps growing.
"""

import pytest

from common import CONTAINER, emit, run_scheme, table

HISTORY = (10, 20, 30)


def test_scalability_restore_over_time(benchmark):
    results = {}

    def sweep():
        for versions in HISTORY:
            baseline = run_scheme("baseline", "kernel", versions=versions)
            hds = run_scheme("hidestore", "kernel", versions=versions)
            results[versions] = (
                baseline.restore(versions).speed_factor,
                hds.restore(versions).speed_factor,
            )
        return len(results)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table(
        ["versions stored", "baseline sf(newest)", "hidestore sf(newest)"],
        [
            [v, f"{results[v][0]:.3f}", f"{results[v][1]:.3f}"]
            for v in HISTORY
        ],
        title="Scalability — newest-version speed factor vs history length",
    )

    baseline_first, baseline_last = results[HISTORY[0]][0], results[HISTORY[-1]][0]
    hds_first, hds_last = results[HISTORY[0]][1], results[HISTORY[-1]][1]
    emit(f"baseline decays {baseline_first:.3f} -> {baseline_last:.3f}; "
         f"HiDeStore holds {hds_first:.3f} -> {hds_last:.3f}")

    # Baseline degrades materially with history; HiDeStore does not.
    assert baseline_last < baseline_first * 0.8
    assert hds_last > hds_first * 0.8
    # And at long histories HiDeStore is clearly ahead.
    assert hds_last > baseline_last * 1.3


def test_scalability_memory_bounded(benchmark):
    rows = []

    def sweep():
        for versions in HISTORY:
            ddfs = run_scheme("ddfs", "kernel", versions=versions)
            hds = run_scheme("hidestore", "kernel", versions=versions)
            rows.append([
                versions,
                ddfs.index.table_bytes,  # modelled on-disk full index
                hds.transient_cache_bytes,
            ])
        return len(rows)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        ["versions", "DDFS full-index bytes", "HiDeStore T1/T2 bytes"],
        rows,
        title="Scalability — index growth vs bounded scratch",
    )
    # DDFS's index grows with unique data; HiDeStore's scratch is bounded
    # by ~one version's metadata regardless of history length.
    assert rows[-1][1] > rows[0][1] * 1.5
    assert rows[-1][2] < rows[0][2] * 1.5
