"""Benchmark-suite conftest: report the experiment tables after the run.

The benchmark files build the tables/series the paper reports; pytest's
output capture would swallow per-test prints, so every emitted line is
buffered (see ``common.emit``) and dumped in the terminal summary, after
pytest-benchmark's timing table.
"""

import common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not common.EMITTED:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper tables & series (reproduction output)", sep="=")
    for line in common.EMITTED:
        terminalreporter.write_line(line)
