"""Supplementary: modeled absolute throughputs on an analytic HDD.

The paper reports hardware-independent counts; this bench translates them
through :class:`repro.storage.io_model.DiskModel` (8 ms seek, 150 MiB/s
transfer) into MB/s so the cross-scheme *ratios* can be read as absolute
numbers.  Backup: index probes are random reads, unique bytes stream out.
Restore: one seek per container read plus the transfer.
"""

import pytest

from common import all_presets, emit, run_scheme, table
from repro.metrics import modeled_backup_throughput, modeled_restore_throughput

SCHEMES = ["ddfs", "sparse", "silo", "hidestore"]


@pytest.mark.parametrize("preset", ["kernel", "gcc"])
def test_modeled_backup_throughput(benchmark, preset):
    systems = {}

    def run_all():
        for scheme in SCHEMES:
            systems[scheme] = run_scheme(scheme, preset)
        return len(systems)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    throughput = {}
    for scheme in SCHEMES:
        system = systems[scheme]
        report = system.report
        if scheme == "hidestore":
            # HiDeStore's lookup units are a *sequential* recipe prefetch,
            # not random index seeks (§5.2.2).
            mbps = modeled_backup_throughput(
                report.logical_bytes,
                report.stored_bytes,
                index_lookups=0,
                sequential_index_bytes=report.disk_index_lookups
                * system.lookup_unit_bytes,
            )
        else:
            mbps = modeled_backup_throughput(
                report.logical_bytes, report.stored_bytes, report.disk_index_lookups
            )
        throughput[scheme] = mbps
        rows.append([scheme, f"{mbps:.0f} MB/s", report.disk_index_lookups])
    table(
        ["scheme", "modeled dedup throughput", "lookup units"],
        rows,
        title=f"Supplement — modeled backup throughput ({preset})",
    )
    # HiDeStore's cache-only dedup yields the best modeled throughput.
    assert throughput["hidestore"] >= max(
        throughput[s] for s in ("ddfs", "sparse", "silo")
    )


@pytest.mark.parametrize("preset", ["kernel"])
def test_modeled_restore_throughput(benchmark, preset):
    systems = {}

    def run_all():
        for scheme in ("baseline", "alacc", "hidestore"):
            systems[scheme] = run_scheme(scheme, preset)
        return len(systems)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    newest = {}
    for scheme, system in systems.items():
        version = system.version_ids()[-1]
        before = system.io.snapshot()
        result = system.restore(version)
        delta = system.io.delta(before)
        mbps = modeled_restore_throughput(
            result.logical_bytes, result.container_reads, delta.bytes_read
        )
        newest[scheme] = mbps
        rows.append([scheme, f"{mbps:.0f} MB/s", result.container_reads])
    table(
        ["scheme", "modeled restore throughput (newest)", "container reads"],
        rows,
        title=f"Supplement — modeled restore throughput ({preset})",
    )
    assert newest["hidestore"] > newest["baseline"]
